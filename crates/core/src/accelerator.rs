//! The Transitive Array accelerator — multi-unit, tiled, cycle-level
//! simulation (Fig. 7/8) plus the exact functional GEMM engine used to
//! prove losslessness.

use crate::config::{ScoreboardMode, TransArrayConfig};
use crate::error::TaError;
use crate::runtime::Runtime;
use crate::source::{PatternSource, SlicedSource};
use crate::tiling::{dram_traffic, GemmShape, TrafficReport};
use crate::unit::{process_and_evaluate_subtile_into, process_subtile_cached, SubtileReport};
use std::ops::Range;
use std::sync::Arc;
use ta_bitslice::{BitSlicedMatrix, RowMajor, RowsMut};
use ta_hasse::{ExecScratch, NullSink, PlanCacheStats, ResultSink, SharedPlanCache, StaticSi};
use ta_quant::MatI32;
use ta_sim::{transarray_area, EnergyBreakdown, EnergyModel, VpuModel};

/// NoC (Benes + wires) dynamic energy per byte moved (pJ/B) — a 5-stage
/// switch fabric plus the operand wiring at 28 nm.
const NOC_PJ_PER_BYTE: f64 = 0.12;

/// Dynamic Scoreboard energy per TransRow scanned (pJ): bitonic compare
/// network + an 8-way update of the ~34-bit entries of Fig. 6.
///
/// Must stay a dyadic rational (exactly representable in f64): per-shard
/// partial sums of `rows × this` are then exact, which is what keeps
/// parallel reports bit-identical to serial ones (see the `runtime`
/// module's determinism contract).
const SCOREBOARD_PJ_PER_ROW: f64 = 3.0;

/// Sustained DRAM bandwidth in bytes per accelerator cycle (≈128 GB/s at
/// 500 MHz).
const DRAM_BYTES_PER_CYCLE: f64 = 256.0;

/// Result of simulating (or executing) one GEMM on the Transitive Array.
#[derive(Debug, Clone, PartialEq)]
pub struct GemmReport {
    /// The GEMM simulated.
    pub shape: GemmShape,
    /// End-to-end cycles: `max(compute, DRAM)`.
    pub cycles: u64,
    /// Compute-side cycles across the unit array.
    pub compute_cycles: u64,
    /// Memory-channel cycles for the layer's DRAM traffic.
    pub dram_cycles: u64,
    /// Accumulate ops performed (per `m_tile` pass, summed & scaled).
    pub total_ops: u64,
    /// Dense binary-GEMM ops the same tiles would need.
    pub dense_bit_ops: u64,
    /// Transitive density (`total_ops / dense_bit_ops`) — Fig. 9's metric.
    pub density: f64,
    /// DRAM traffic.
    pub traffic: TrafficReport,
    /// Energy breakdown (Fig. 11's slices).
    pub energy: EnergyBreakdown,
    /// Sub-tiles in the full layer.
    pub subtiles_total: u64,
    /// Sub-tiles simulated exactly (== total unless sampling kicked in).
    pub subtiles_simulated: u64,
    /// SI misses (static Scoreboard mode only).
    pub si_misses: u64,
    /// VPU cycles for the group-wise partial-result rescale (§4.5).
    /// Overlapped with GEMM compute by the double buffering — informational
    /// unless it exceeds `compute_cycles` (it never does at group 128).
    pub vpu_cycles: u64,
    /// Wall-clock seconds at the model frequency.
    pub seconds: f64,
}

impl GemmReport {
    /// Total energy in nanojoules (the unit Fig. 10's right axis uses).
    pub fn energy_nj(&self) -> f64 {
        self.energy.total() / 1000.0
    }

    /// Effective MACs per cycle (dense-equivalent throughput).
    pub fn macs_per_cycle(&self) -> f64 {
        self.shape.macs() as f64 / self.cycles.max(1) as f64
    }
}

/// The accelerator: configuration + energy model (+ the optional shared
/// plan cache the `plan_cache` knob enables).
///
/// Clones share the plan cache — intentional: a cloned accelerator
/// simulating the same weights reuses the memoized plans, which is the
/// cross-call reuse the cache exists for. Reports are unaffected either
/// way (cached and fresh plans are bit-identical).
#[derive(Debug, Clone)]
pub struct TransitiveArray {
    cfg: TransArrayConfig,
    energy: EnergyModel,
    plan_cache: Option<Arc<SharedPlanCache>>,
}

/// Marker error: a source refused to fork, so the sharded path must fall
/// back to the serial loop.
struct CannotFork;

/// Per-worker aggregate over a shard of the sub-tile grid.
///
/// The integer counters are plain sums, so merging shards is
/// order-independent. The one floating-point field (`sb_pj`) folds
/// per-sub-tile contributions that are exact dyadic multiples
/// (`rows × 3.0`), so the sharded regrouping equals the serial fold
/// bit-exactly; the runtime additionally merges shards in **fixed shard
/// order** so every run folds identically (see the `runtime` module's
/// determinism contract).
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct Agg {
    pub(crate) subtile_cycles: u64,
    pub(crate) total_ops: u64,
    pub(crate) dense_bit_ops: u64,
    pub(crate) ape_ops: u64,
    pub(crate) rows: u64,
    pub(crate) si_misses: u64,
    pub(crate) simulated: u64,
    /// Dynamic-Scoreboard scan energy (pJ), accumulated per sub-tile.
    pub(crate) sb_pj: f64,
}

impl Agg {
    fn add(&mut self, rep: &SubtileReport) {
        self.subtile_cycles += rep.cycles;
        self.total_ops += rep.total_ops;
        self.dense_bit_ops += rep.dense_bit_ops;
        let nonzero = rep
            .stats
            .as_ref()
            .map(|s| (s.rows - s.zero_rows) as u64)
            .unwrap_or(rep.total_ops.min(rep.rows as u64));
        self.ape_ops += nonzero;
        self.rows += rep.rows as u64;
        self.si_misses += rep.si_misses;
        self.simulated += 1;
        // Scoreboard scans only run in dynamic mode (stats present).
        if rep.stats.is_some() {
            self.sb_pj += rep.rows as f64 * SCOREBOARD_PJ_PER_ROW;
        }
    }

    /// Merges another shard's aggregate into this one. Callers merge in
    /// shard order (shard 0 first) so the `f64` fold is reproducible.
    pub(crate) fn merge(&mut self, other: &Agg) {
        self.subtile_cycles += other.subtile_cycles;
        self.total_ops += other.total_ops;
        self.dense_bit_ops += other.dense_bit_ops;
        self.ape_ops += other.ape_ops;
        self.rows += other.rows;
        self.si_misses += other.si_misses;
        self.simulated += other.simulated;
        self.sb_pj += other.sb_pj;
    }

    /// Folds per-shard aggregates in shard order.
    pub(crate) fn merge_shards(shards: &[Agg]) -> Agg {
        let mut out = Agg::default();
        for s in shards {
            out.merge(s);
        }
        out
    }
}

impl TransitiveArray {
    /// Creates the accelerator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent.
    pub fn new(cfg: TransArrayConfig) -> Self {
        Self::with_energy_model(cfg, EnergyModel::paper_28nm())
    }

    /// Creates the accelerator with a custom energy model.
    pub fn with_energy_model(cfg: TransArrayConfig, energy: EnergyModel) -> Self {
        cfg.validate();
        let plan_cache = (cfg.plan_cache > 0).then(|| {
            Arc::new(match cfg.plan_cache_shards {
                0 => SharedPlanCache::new(cfg.plan_cache),
                n => SharedPlanCache::with_shards(cfg.plan_cache, n),
            })
        });
        Self { cfg, energy, plan_cache }
    }

    /// The configuration.
    pub fn config(&self) -> &TransArrayConfig {
        &self.cfg
    }

    /// The energy model.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// The shared plan cache, when the `plan_cache` knob enabled one.
    fn plan_cache(&self) -> Option<&SharedPlanCache> {
        self.plan_cache.as_deref()
    }

    /// Hit/miss/eviction counters of the plan cache (`None` when the
    /// `plan_cache` knob is 0). Counters accumulate across every layer,
    /// batch job, and worker thread of this accelerator (and its clones).
    pub fn plan_cache_stats(&self) -> Option<PlanCacheStats> {
        self.plan_cache.as_ref().map(|c| c.stats())
    }

    /// Simulates one GEMM at scale: every sampled weight sub-tile is
    /// simulated exactly (Scoreboard, lanes, conflicts); cycle/op/energy
    /// counts are scaled by the sampling fraction and the `M`-tiling
    /// repetition (sub-tile schedules are input-independent, so this is
    /// exact whenever sampling is off).
    ///
    /// With `threads != 1` the sampled sub-tile sequence is sharded
    /// across the tile-execution runtime; the report is bit-exact against
    /// the serial run (see the `runtime` module's determinism contract).
    /// Sources that cannot [`PatternSource::fork`] fall back to the
    /// serial loop.
    pub fn simulate_layer(&self, shape: GemmShape, source: &mut dyn PatternSource) -> GemmReport {
        self.simulate_layer_with(shape, source, &Runtime::new(self.cfg.threads))
    }

    /// [`Self::simulate_layer`] on an explicit runtime (the [`Batch`]
    /// API pins jobs to serial workers through this entry point).
    ///
    /// [`Batch`]: crate::runtime::Batch
    pub(crate) fn simulate_layer_with(
        &self,
        shape: GemmShape,
        source: &mut dyn PatternSource,
        rt: &Runtime,
    ) -> GemmReport {
        assert_eq!(source.width(), self.cfg.width, "source width mismatch");
        let t = self.cfg.width as usize;
        let n_tiles = shape.n.div_ceil(self.cfg.n_tile());
        let k_chunks = shape.k.div_ceil(t);
        let total = (n_tiles * k_chunks) as u64;
        let limit = self.cfg.sample_limit as u64;
        let step = if limit > 0 && total > limit { total.div_ceil(limit) } else { 1 };

        if rt.threads() > 1 {
            if let Some(report) =
                self.simulate_layer_sharded(shape, source, rt, k_chunks, step, total)
            {
                return report;
            }
        }

        // Serial fallback. The SI build uses the serial runtime too: if
        // the sharded path was viable it would have returned above, so a
        // sharded SI attempt here would deterministically fail again.
        let static_si =
            self.build_static_si(n_tiles, k_chunks, step as usize, source, &Runtime::serial());

        let mut agg = Agg::default();
        let mut idx = 0u64;
        while idx < total {
            let (nt, kc) = ((idx / k_chunks as u64) as usize, (idx % k_chunks as u64) as usize);
            let patterns = source.subtile_patterns(nt, kc);
            let rep =
                process_subtile_cached(&self.cfg, static_si.as_ref(), &patterns, self.plan_cache());
            agg.add(&rep);
            idx += step;
        }
        self.finalize(shape, agg, total)
    }

    /// The parallel body of [`Self::simulate_layer`]: shards the sampled
    /// sub-tile sequence into contiguous ranges, forks the source per
    /// worker, and merges per-worker aggregates in shard order. Returns
    /// `None` (caller falls back to serial) when the grid is too small to
    /// shard or the source cannot fork.
    fn simulate_layer_sharded(
        &self,
        shape: GemmShape,
        source: &mut dyn PatternSource,
        rt: &Runtime,
        k_chunks: usize,
        step: u64,
        total: u64,
    ) -> Option<GemmReport> {
        let sampled = total.div_ceil(step) as usize;
        let shards = rt.shards_for(sampled);
        if shards.len() <= 1 {
            return None;
        }
        // Static mode forks its own set for the SI calibration pass (the
        // forks below are consumed by the processing pass), so build the
        // SI first: a non-forkable source then bails before any
        // processing forks are allocated.
        let static_si = match self.build_static_si_sharded(&*source, rt, k_chunks, step, sampled) {
            Ok(si) => si,
            Err(CannotFork) => return None,
        };
        let mut forks = Vec::with_capacity(shards.len());
        for _ in 0..shards.len() {
            forks.push(source.fork()?);
        }
        let si_ref = static_si.as_ref();
        let cache = self.plan_cache();
        let aggs =
            rt.run_shards_with(shards.into_iter().zip(forks).collect(), |_, positions, mut src| {
                let mut agg = Agg::default();
                for pos in positions {
                    let idx = pos as u64 * step;
                    let (nt, kc) =
                        ((idx / k_chunks as u64) as usize, (idx % k_chunks as u64) as usize);
                    let patterns = src.subtile_patterns(nt, kc);
                    agg.add(&process_subtile_cached(&self.cfg, si_ref, &patterns, cache));
                }
                agg
            });
        Some(self.finalize(shape, Agg::merge_shards(&aggs), total))
    }

    /// Executes one GEMM **functionally and exactly** (bit-exact against
    /// [`ta_quant::gemm_i32`]) while producing the same performance report
    /// as [`Self::simulate_layer`] without sampling.
    ///
    /// # Panics
    ///
    /// Panics if the weights don't fit `weight_bits`, the inputs don't fit
    /// `act_bits`, shapes disagree, or an accumulator overflows `i32`.
    /// Prefer [`Self::try_execute_gemm`] (or the [`crate::Session`] API)
    /// in code that must not panic.
    pub fn execute_gemm(&self, weights: &MatI32, input: &MatI32) -> (MatI32, GemmReport) {
        match self.try_execute_gemm(weights, input) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Self::execute_gemm`] with operand validation instead of panics:
    /// shape mismatch and out-of-range operands come back as [`TaError`].
    ///
    /// # Errors
    ///
    /// [`TaError::ShapeMismatch`] when `weights.cols() != input.rows()`,
    /// [`TaError::WeightRange`] / [`TaError::InputRange`] when an operand
    /// exceeds the configured precision.
    pub fn try_execute_gemm(
        &self,
        weights: &MatI32,
        input: &MatI32,
    ) -> Result<(MatI32, GemmReport), TaError> {
        self.check_gemm_operands(weights, input)?;
        Ok(self.execute_gemm_with(weights, input, &Runtime::new(self.cfg.threads), &mut NullSink))
    }

    /// [`Self::try_execute_gemm`] that additionally streams every
    /// computed pattern result into `sink` as it is finalized (the
    /// serving frontend's per-request streaming hook).
    ///
    /// Streaming runs the sub-tile grid **serially** so emissions arrive
    /// in the deterministic serial order; the returned output and report
    /// are bit-identical to [`Self::execute_gemm`] either way (the
    /// determinism contract makes parallel ≡ serial).
    ///
    /// # Errors
    ///
    /// Same as [`Self::try_execute_gemm`].
    pub fn execute_gemm_streaming(
        &self,
        weights: &MatI32,
        input: &MatI32,
        sink: &mut dyn ResultSink,
    ) -> Result<(MatI32, GemmReport), TaError> {
        self.check_gemm_operands(weights, input)?;
        Ok(self.execute_gemm_with(weights, input, &Runtime::serial(), sink))
    }

    /// Validates `execute_gemm` operands against the configuration.
    pub(crate) fn check_gemm_operands(
        &self,
        weights: &MatI32,
        input: &MatI32,
    ) -> Result<(), TaError> {
        if weights.cols() != input.rows() {
            return Err(TaError::ShapeMismatch {
                weight_cols: weights.cols(),
                input_rows: input.rows(),
            });
        }
        if !weights.fits_signed_bits(self.cfg.weight_bits) {
            return Err(TaError::WeightRange { weight_bits: self.cfg.weight_bits });
        }
        if !input.fits_signed_bits(self.cfg.act_bits) {
            return Err(TaError::InputRange { act_bits: self.cfg.act_bits });
        }
        Ok(())
    }

    /// The execution engine behind every `execute_gemm` flavor: operands
    /// are assumed validated. With a multi-worker runtime the weight
    /// tiles shard across the pool (`sink` must then be [`NullSink`]-like
    /// and is only fed from the serial path); [`crate::Session`] and the
    /// batch paths pass [`Runtime::serial`] to pin one request to one
    /// worker.
    pub(crate) fn execute_gemm_with(
        &self,
        weights: &MatI32,
        input: &MatI32,
        rt: &Runtime,
        sink: &mut dyn ResultSink,
    ) -> (MatI32, GemmReport) {
        let shape = GemmShape::new(weights.rows(), weights.cols(), input.cols());
        let sliced = BitSlicedMatrix::slice_parallel(weights, self.cfg.weight_bits, rt.threads());
        let t = self.cfg.width as usize;
        let n_tile = self.cfg.n_tile();
        let n_tiles = shape.n.div_ceil(n_tile);
        let k_chunks = shape.k.div_ceil(t);

        let mut source = SlicedSource::new(&sliced, n_tile, self.cfg.width);
        let static_si = self.build_static_si(n_tiles, k_chunks, 1, &mut source, rt);

        // Stage the whole input once as a single contiguous row-major
        // buffer (zero-padded past K): sub-tile evaluations borrow `T`
        // consecutive rows as a `TileView` instead of cloning per-chunk
        // `Vec<Vec<i64>>` copies.
        let mut staged = RowMajor::<i64>::zeros(k_chunks * t, shape.m);
        for k in 0..shape.k {
            for (s, &v) in staged.row_mut(k).iter_mut().zip(input.row(k)) {
                *s = v as i64;
            }
        }

        // Shard over weight tiles: each worker owns a disjoint row range
        // of the flat output accumulator, so accumulation needs no
        // synchronization, and the per-row sum over k-chunks runs in the
        // serial order (exact integer arithmetic makes it
        // order-independent regardless).
        let mut acc = RowMajor::<i64>::zeros(shape.n, shape.m);
        let shards = rt.shards_for(n_tiles);
        let mut shard_jobs = Vec::with_capacity(shards.len());
        {
            let mut rest: &mut [i64] = acc.as_mut_slice();
            let mut offset = 0usize;
            for tiles in shards {
                let end = (tiles.end * n_tile).min(shape.n);
                let (rows, tail) = rest.split_at_mut((end - offset) * shape.m);
                shard_jobs.push((tiles, RowsMut::new(rows, shape.m)));
                rest = tail;
                offset = end;
            }
        }
        let si_ref = static_si.as_ref();
        let aggs = if shard_jobs.len() <= 1 {
            // Serial path: runs inline on the caller's thread and is the
            // only path that feeds a live streaming sink.
            shard_jobs
                .into_iter()
                .map(|(tiles, acc_rows)| {
                    self.execute_shard(
                        &sliced, &staged, si_ref, shape, k_chunks, tiles, acc_rows, sink,
                    )
                })
                .collect()
        } else {
            rt.run_shards_with(shard_jobs, |_, tiles, acc_rows| {
                self.execute_shard(
                    &sliced,
                    &staged,
                    si_ref,
                    shape,
                    k_chunks,
                    tiles,
                    acc_rows,
                    &mut NullSink,
                )
            })
        };
        let agg = Agg::merge_shards(&aggs);
        let out = MatI32::from_fn(shape.n, shape.m, |r, c| {
            i32::try_from(acc.row(r)[c]).expect("TransArray accumulation overflowed i32")
        });
        let report = self.finalize(shape, agg, (n_tiles * k_chunks) as u64);
        (out, report)
    }

    /// One worker's share of the fused execute path: walks `tiles` in
    /// serial order, evaluates every sub-tile into its scratch slab,
    /// streams each computed pattern into `sink`, and accumulates the
    /// expanded rows into this shard's slice of the output.
    #[allow(clippy::too_many_arguments)]
    fn execute_shard(
        &self,
        sliced: &BitSlicedMatrix,
        staged: &RowMajor<i64>,
        si_ref: Option<&StaticSi>,
        shape: GemmShape,
        k_chunks: usize,
        tiles: Range<usize>,
        mut acc_rows: RowsMut<'_, i64>,
        sink: &mut dyn ResultSink,
    ) -> Agg {
        let t = self.cfg.width as usize;
        let s_bits = self.cfg.weight_bits as usize;
        let n_tile = self.cfg.n_tile();
        let cache = self.plan_cache();
        let mut src = SlicedSource::new(sliced, n_tile, self.cfg.width);
        let row_offset = tiles.start * n_tile;
        let mut agg = Agg::default();
        // Per-worker arena + pattern buffer: reused across every
        // sub-tile this worker touches (zero steady-state allocation
        // on the evaluation path).
        let mut scratch = ExecScratch::new();
        let mut patterns: Vec<u16> = Vec::new();
        for nt in tiles {
            for kc in 0..k_chunks {
                src.subtile_patterns_into(nt, kc, &mut patterns);
                let inputs = staged.view_rows(kc * t, t);
                let rep = process_and_evaluate_subtile_into(
                    &self.cfg,
                    si_ref,
                    &patterns,
                    inputs,
                    cache,
                    &mut scratch,
                    sink,
                );
                agg.add(&rep);
                // Fused row expansion: accumulate each non-zero row's
                // slab result straight into the output shard.
                for (r, &p) in patterns.iter().enumerate() {
                    if p == 0 {
                        continue;
                    }
                    let n_local = r / s_bits;
                    let level = (r % s_bits) as u32;
                    let n_global = nt * n_tile + n_local;
                    if n_global >= shape.n {
                        continue;
                    }
                    let w = if level == self.cfg.weight_bits - 1 {
                        -(1i64 << level)
                    } else {
                        1i64 << level
                    };
                    let result = scratch.result(p).expect("pattern must be computed");
                    ta_bitslice::kernels::axpy(acc_rows.row_mut(n_global - row_offset), w, result);
                }
            }
        }
        agg
    }

    /// Builds the static SI (offline calibration over the sampled tensor
    /// patterns) when the config asks for static mode, sharding the
    /// pattern collection across the runtime when the source forks.
    fn build_static_si(
        &self,
        n_tiles: usize,
        k_chunks: usize,
        step: usize,
        source: &mut dyn PatternSource,
        rt: &Runtime,
    ) -> Option<StaticSi> {
        if self.cfg.scoreboard_mode != ScoreboardMode::Static {
            return None;
        }
        let step = step.max(1) as u64;
        let total = (n_tiles * k_chunks) as u64;
        let sampled = total.div_ceil(step) as usize;
        if rt.threads() > 1 {
            if let Ok(si) = self.build_static_si_sharded(&*source, rt, k_chunks, step, sampled) {
                return si;
            }
        }
        let mut all = Vec::new();
        let mut idx = 0u64;
        while idx < total {
            let (nt, kc) = ((idx / k_chunks as u64) as usize, (idx % k_chunks as u64) as usize);
            all.extend(source.subtile_patterns(nt, kc));
            idx += step;
        }
        Some(StaticSi::from_patterns(self.cfg.scoreboard_config(), all))
    }

    /// Sharded static-SI calibration: workers collect the sampled
    /// patterns of contiguous shard ranges; concatenating in shard order
    /// reproduces the serial pattern sequence exactly.
    fn build_static_si_sharded(
        &self,
        source: &dyn PatternSource,
        rt: &Runtime,
        k_chunks: usize,
        step: u64,
        sampled: usize,
    ) -> Result<Option<StaticSi>, CannotFork> {
        if self.cfg.scoreboard_mode != ScoreboardMode::Static {
            return Ok(None);
        }
        let shards = rt.shards_for(sampled);
        if shards.len() <= 1 {
            return Err(CannotFork);
        }
        let mut forks = Vec::with_capacity(shards.len());
        for _ in 0..shards.len() {
            forks.push(source.fork().ok_or(CannotFork)?);
        }
        let parts =
            rt.run_shards_with(shards.into_iter().zip(forks).collect(), |_, positions, mut src| {
                let mut all = Vec::new();
                for pos in positions {
                    let idx = pos as u64 * step;
                    let (nt, kc) =
                        ((idx / k_chunks as u64) as usize, (idx % k_chunks as u64) as usize);
                    all.extend(src.subtile_patterns(nt, kc));
                }
                all
            });
        Ok(Some(StaticSi::from_patterns(self.cfg.scoreboard_config(), parts.into_iter().flatten())))
    }

    fn finalize(&self, shape: GemmShape, agg: Agg, subtiles_total: u64) -> GemmReport {
        let scale =
            if agg.simulated == 0 { 0.0 } else { subtiles_total as f64 / agg.simulated as f64 };
        // §4.5: 4-bit activations split each PPE/APE into two halves, so
        // one pass covers `m_tile × act_split` input columns. Each op×m
        // unit then denotes twice the elements at half the per-element
        // adder/buffer cost, so the energy formulas below stay valid.
        let m_reps = shape.m.div_ceil(self.cfg.m_tile * self.cfg.act_split()) as f64;
        let units = self.cfg.units as f64;
        let compute_cycles = (agg.subtile_cycles as f64 * scale * m_reps / units).ceil() as u64;
        let traffic = dram_traffic(
            shape,
            self.cfg.weight_bits,
            self.cfg.act_bits,
            (self.cfg.total_buffer_kb() * 1024.0) as u64,
        );
        let dram_cycles = (traffic.total() as f64 / DRAM_BYTES_PER_CYCLE).ceil() as u64;
        let cycles = compute_cycles.max(dram_cycles).max(1);

        let ops = agg.total_ops as f64 * scale * m_reps;
        let ape_ops = agg.ape_ops as f64 * scale * m_reps;
        let dense = agg.dense_bit_ops as f64 * scale * m_reps;
        // Scoreboard runs once per weight sub-tile (not per M pass).
        let sb_pj = agg.sb_pj * scale;
        // Group-wise rescale (§4.5, group 128): the VPU applies an integer
        // scale to every output once per 128-wide reduction group.
        let vpu = VpuModel::paper_default();
        let rescale_groups = shape.k.div_ceil(128);
        let vpu_cycles =
            vpu.requant_cycles(shape.n * shape.m, self.cfg.act_bits) * rescale_groups as u64;
        let mut energy = self.energy_breakdown(ops, ape_ops, sb_pj, &traffic, cycles);
        energy.core += vpu.energy_pj(
            (shape.n * shape.m * rescale_groups) as u64,
            2.0,
            self.cfg.act_bits,
            self.energy.mac_pj(16),
        );

        GemmReport {
            shape,
            cycles,
            compute_cycles,
            dram_cycles,
            total_ops: ops.round() as u64,
            dense_bit_ops: dense.round() as u64,
            density: if dense > 0.0 { ops / dense } else { 0.0 },
            traffic,
            energy,
            subtiles_total,
            subtiles_simulated: agg.simulated,
            si_misses: (agg.si_misses as f64 * scale).round() as u64,
            vpu_cycles,
            seconds: self.energy.seconds(cycles),
        }
    }

    /// Per-event energy accounting (see DESIGN.md §2 and the constants at
    /// the top of this module). `ops`/`ape_ops` are already scaled to the
    /// whole layer; each drives an `m_tile`-wide vector. `sb_pj` is the
    /// (already scaled) dynamic-Scoreboard scan energy accumulated per
    /// sub-tile — zero in static mode.
    fn energy_breakdown(
        &self,
        ops: f64,
        ape_ops: f64,
        sb_pj: f64,
        traffic: &TrafficReport,
        cycles: u64,
    ) -> EnergyBreakdown {
        let e = &self.energy;
        let m_t = self.cfg.m_tile as f64;
        let t = self.cfg.width as f64;
        let mut b = EnergyBreakdown::default();

        // Core: PPE adds (12-bit), APE accumulations (24-bit), dynamic
        // Scoreboard, NoC traversals.
        let ppe = ops * m_t * e.add_pj(12);
        let ape = ape_ops * m_t * e.add_pj(24);
        let sb = sb_pj;
        let noc = ops * m_t * NOC_PJ_PER_BYTE;
        b.core = ppe + ape + sb + noc;

        // Buffers: bytes moved × capacity-dependent pJ/B.
        let w_pj = e.sram_pj_per_byte(self.cfg.weight_buf_kb);
        let i_pj = e.sram_pj_per_byte(self.cfg.input_buf_kb);
        let o_pj = e.sram_pj_per_byte(self.cfg.output_buf_kb);
        let p_pj = e.sram_pj_per_byte(self.cfg.prefix_buf_kb);
        let d_pj = e.sram_pj_per_byte(self.cfg.double_buf_kb / 2.0);
        // Weight patterns stream once per sub-tile M-pass: rows×T/8 bytes.
        b.weight_buf = ops * (t / 8.0) * w_pj;
        // Each op fetches one m_tile-wide input row (8-bit activations).
        b.input_buf = ops * m_t * i_pj;
        // Prefix buffer: read prefix + write result per PPE op, and one
        // read per FR/APE accumulation — 12-bit entries (1.5 B).
        b.prefix_buf = (2.0 * ops + ape_ops) * m_t * 1.5 * p_pj;
        // Output psums: one banked 24-bit accumulate-write per APE op
        // (the read side rides the APE accumulator register).
        b.output_buf = ape_ops * m_t * 3.0 * o_pj;
        // Double-buffer staging between crossbar and prefix buffer.
        b.double_buf = ape_ops * m_t * 1.5 * d_pj;

        b.dram_dynamic = e.dram_pj(traffic.total());
        b.dram_static = e.static_pj(e.dram_static_mw, cycles);

        let area = transarray_area(
            self.cfg.units as u64,
            self.cfg.width as u64,
            self.cfg.m_tile as u64,
            self.cfg.total_buffer_kb(),
        );
        let static_mw = e.core_static_mw_per_mm2 * area.core_mm2()
            + e.sram_static_mw_per_kb * self.cfg.total_buffer_kb();
        b.core_static = e.static_pj(static_mw, cycles);
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ta_quant::gemm_i32;

    fn small_cfg(weight_bits: u32, mode: ScoreboardMode) -> TransArrayConfig {
        TransArrayConfig {
            width: 4,
            max_transrows: 16,
            weight_bits,
            act_bits: 8,
            units: 2,
            m_tile: 4,
            scoreboard_mode: mode,
            sample_limit: 0,
            ..TransArrayConfig::paper_w8()
        }
    }

    fn det_mat(rows: usize, cols: usize, bits: u32, seed: i64) -> MatI32 {
        let hi = (1i64 << (bits - 1)) - 1;
        let lo = -(1i64 << (bits - 1));
        MatI32::from_fn(rows, cols, |r, c| {
            let x = (r as i64 * 2654435761 + c as i64 * 40503 + seed * 9973) % (hi - lo + 1);
            (if x < 0 { x + (hi - lo + 1) } else { x } + lo) as i32
        })
    }

    #[test]
    fn execute_matches_reference_dynamic() {
        let ta = TransitiveArray::new(small_cfg(4, ScoreboardMode::Dynamic));
        let w = det_mat(10, 13, 4, 1);
        let x = det_mat(13, 7, 8, 2);
        let (out, rep) = ta.execute_gemm(&w, &x);
        assert_eq!(out, gemm_i32(&w, &x), "TransArray must be bit-exact");
        assert!(rep.total_ops > 0);
        assert!(rep.density > 0.0 && rep.density <= 1.0);
        assert_eq!(rep.subtiles_simulated, rep.subtiles_total);
    }

    #[test]
    fn execute_matches_reference_static() {
        let ta = TransitiveArray::new(small_cfg(4, ScoreboardMode::Static));
        let w = det_mat(9, 11, 4, 3);
        let x = det_mat(11, 5, 8, 4);
        let (out, _) = ta.execute_gemm(&w, &x);
        assert_eq!(out, gemm_i32(&w, &x), "static mode must be bit-exact too");
    }

    #[test]
    fn execute_matches_reference_8bit_weights() {
        let cfg = TransArrayConfig {
            width: 8,
            max_transrows: 32,
            weight_bits: 8,
            units: 2,
            m_tile: 4,
            sample_limit: 0,
            ..TransArrayConfig::paper_w8()
        };
        let ta = TransitiveArray::new(cfg);
        let w = det_mat(8, 20, 8, 5);
        let x = det_mat(20, 6, 8, 6);
        let (out, _) = ta.execute_gemm(&w, &x);
        assert_eq!(out, gemm_i32(&w, &x));
    }

    #[test]
    fn negative_heavy_weights_are_exact() {
        // All-negative weights exercise the MSB (−2^(S−1)) plane hard.
        let ta = TransitiveArray::new(small_cfg(4, ScoreboardMode::Dynamic));
        let w = MatI32::from_fn(6, 9, |r, c| -(((r * 9 + c) % 8) as i32) - 1);
        let x = det_mat(9, 3, 8, 7);
        let (out, _) = ta.execute_gemm(&w, &x);
        assert_eq!(out, gemm_i32(&w, &x));
    }

    #[test]
    fn simulate_layer_report_sane() {
        let ta = TransitiveArray::new(TransArrayConfig {
            sample_limit: 64,
            ..TransArrayConfig::paper_w8()
        });
        let w = det_mat(64, 64, 8, 8);
        let sliced = BitSlicedMatrix::slice(&w, 8);
        let mut src = SlicedSource::new(&sliced, ta.config().n_tile(), 8);
        let shape = GemmShape::new(64, 64, 128);
        let rep = ta.simulate_layer(shape, &mut src);
        assert!(rep.cycles >= rep.compute_cycles.min(rep.dram_cycles));
        assert!(rep.density > 0.05 && rep.density < 1.0, "density {}", rep.density);
        assert!(rep.energy.total() > 0.0);
        assert!(rep.seconds > 0.0);
        assert_eq!(rep.subtiles_total, 2 * 8);
        assert!(rep.energy.buffer_total() > 0.0);
    }

    #[test]
    fn sampling_approximates_full_simulation() {
        let w = det_mat(256, 128, 8, 9);
        let sliced = BitSlicedMatrix::slice(&w, 8);
        let shape = GemmShape::new(256, 128, 64);

        let full_cfg = TransArrayConfig { sample_limit: 0, ..TransArrayConfig::paper_w8() };
        let full_ta = TransitiveArray::new(full_cfg);
        let mut src = SlicedSource::new(&sliced, full_ta.config().n_tile(), 8);
        let full = full_ta.simulate_layer(shape, &mut src);

        let sampled_cfg = TransArrayConfig { sample_limit: 32, ..TransArrayConfig::paper_w8() };
        let sampled_ta = TransitiveArray::new(sampled_cfg);
        let mut src2 = SlicedSource::new(&sliced, sampled_ta.config().n_tile(), 8);
        let sampled = sampled_ta.simulate_layer(shape, &mut src2);

        assert!(sampled.subtiles_simulated < full.subtiles_simulated);
        let ratio = sampled.cycles as f64 / full.cycles as f64;
        assert!((0.8..1.25).contains(&ratio), "sampled/full cycle ratio {ratio}");
    }

    #[test]
    fn w4_beats_w8_on_same_layer() {
        // 4-bit weights double the rows per sub-tile and halve weight
        // traffic → fewer cycles (the iso-accuracy win of §5.5).
        let w8 = det_mat(128, 128, 8, 10);
        let w4 = det_mat(128, 128, 4, 10);
        let shape = GemmShape::new(128, 128, 256);

        let ta8 = TransitiveArray::new(TransArrayConfig {
            sample_limit: 0,
            ..TransArrayConfig::paper_w8()
        });
        let s8 = BitSlicedMatrix::slice(&w8, 8);
        let mut src8 = SlicedSource::new(&s8, ta8.config().n_tile(), 8);
        let r8 = ta8.simulate_layer(shape, &mut src8);

        let ta4 = TransitiveArray::new(TransArrayConfig {
            sample_limit: 0,
            ..TransArrayConfig::paper_w4()
        });
        let s4 = BitSlicedMatrix::slice(&w4, 4);
        let mut src4 = SlicedSource::new(&s4, ta4.config().n_tile(), 8);
        let r4 = ta4.simulate_layer(shape, &mut src4);

        assert!(
            r4.cycles * 3 < r8.cycles * 2,
            "W4 ({}) should be ≥1.5x faster than W8 ({})",
            r4.cycles,
            r8.cycles
        );
    }

    #[test]
    fn four_bit_activations_double_throughput() {
        // §4.5: splitting the PPE into two 6-bit halves doubles the input
        // columns per cycle — same layer, A4 ≈ half the cycles of A8.
        let w = det_mat(128, 128, 8, 12);
        let sliced = BitSlicedMatrix::slice(&w, 8);
        let shape = GemmShape::new(128, 128, 512);
        let run = |act_bits: u32| {
            let cfg =
                TransArrayConfig { act_bits, sample_limit: 0, ..TransArrayConfig::paper_w8() };
            let ta = TransitiveArray::new(cfg);
            let mut src = SlicedSource::new(&sliced, ta.config().n_tile(), 8);
            ta.simulate_layer(shape, &mut src)
        };
        let a8 = run(8);
        let a4 = run(4);
        let ratio = a8.compute_cycles as f64 / a4.compute_cycles as f64;
        assert!((1.9..2.1).contains(&ratio), "A8/A4 compute ratio {ratio}");
        // 4-bit activations also halve input DRAM traffic.
        assert!(a4.traffic.input_bytes < a8.traffic.input_bytes);
    }

    #[test]
    fn four_bit_activations_stay_exact() {
        let cfg = TransArrayConfig { act_bits: 4, ..small_cfg(4, ScoreboardMode::Dynamic) };
        let ta = TransitiveArray::new(cfg);
        let w = det_mat(10, 12, 4, 13);
        let x = det_mat(12, 9, 4, 14);
        let (out, _) = ta.execute_gemm(&w, &x);
        assert_eq!(out, gemm_i32(&w, &x));
    }

    #[test]
    fn vpu_rescale_overlaps_behind_compute() {
        // §4.5: "we can efficiently overlap the overhead" — at group 128
        // the rescale stream is far below the GEMM's compute cycles.
        let ta = TransitiveArray::new(TransArrayConfig {
            sample_limit: 64,
            ..TransArrayConfig::paper_w8()
        });
        let w = det_mat(256, 256, 8, 15);
        let sliced = BitSlicedMatrix::slice(&w, 8);
        let mut src = SlicedSource::new(&sliced, ta.config().n_tile(), 8);
        let rep = ta.simulate_layer(GemmShape::new(256, 256, 256), &mut src);
        assert!(rep.vpu_cycles > 0);
        assert!(
            rep.vpu_cycles < rep.compute_cycles,
            "vpu {} must hide behind compute {}",
            rep.vpu_cycles,
            rep.compute_cycles
        );
    }

    #[test]
    fn plan_cache_leaves_reports_bit_identical() {
        for mode in [ScoreboardMode::Dynamic, ScoreboardMode::Static] {
            let w = det_mat(128, 96, 8, 21);
            let sliced = BitSlicedMatrix::slice(&w, 8);
            let shape = GemmShape::new(128, 96, 64);
            let base_cfg = TransArrayConfig { sample_limit: 0, ..TransArrayConfig::paper_w8() };
            let base_cfg = TransArrayConfig { scoreboard_mode: mode, ..base_cfg };

            let uncached = TransitiveArray::new(base_cfg.clone());
            let mut src = SlicedSource::new(&sliced, uncached.config().n_tile(), 8);
            let want = uncached.simulate_layer(shape, &mut src);
            assert!(uncached.plan_cache_stats().is_none());

            let cached =
                TransitiveArray::new(base_cfg.to_builder().plan_cache(256).build().unwrap());
            let mut src = SlicedSource::new(&sliced, cached.config().n_tile(), 8);
            let first = cached.simulate_layer(shape, &mut src);
            let mut src = SlicedSource::new(&sliced, cached.config().n_tile(), 8);
            let second = cached.simulate_layer(shape, &mut src);
            assert_eq!(first, want, "{mode:?}: cold cached run must equal uncached");
            assert_eq!(second, want, "{mode:?}: warm cached run must equal uncached");
            let stats = cached.plan_cache_stats().expect("cache enabled");
            assert!(stats.hits > 0, "{mode:?}: replaying the layer must hit: {stats:?}");
            assert!(stats.hit_rate() > 0.0);
        }
    }

    #[test]
    fn plan_cache_execute_gemm_stays_exact() {
        for mode in [ScoreboardMode::Dynamic, ScoreboardMode::Static] {
            let cfg = small_cfg(4, mode).to_builder().plan_cache(64).build().unwrap();
            let ta = TransitiveArray::new(cfg);
            let w = det_mat(10, 13, 4, 31);
            let x = det_mat(13, 7, 8, 32);
            let (out, rep) = ta.execute_gemm(&w, &x);
            assert_eq!(out, gemm_i32(&w, &x), "{mode:?}: cached GEMM must stay lossless");
            let uncached = TransitiveArray::new(small_cfg(4, mode));
            let (out2, rep2) = uncached.execute_gemm(&w, &x);
            assert_eq!(out, out2);
            assert_eq!(rep, rep2, "{mode:?}: cached report must equal uncached");
            // Repeat the same GEMM on the same accelerator.
            let before = ta.plan_cache_stats().unwrap();
            let _ = ta.execute_gemm(&w, &x);
            let after = ta.plan_cache_stats().unwrap();
            match mode {
                ScoreboardMode::Dynamic => {
                    assert!(after.hits > before.hits, "repeat run must hit");
                    assert_eq!(after.misses, before.misses, "repeat run must not miss");
                }
                ScoreboardMode::Static => {
                    // Static mode misses on repeats by design: each run
                    // builds a fresh SI table and the cache is scoped to
                    // the SI instance whose chains produced each entry.
                    assert!(after.misses > before.misses, "fresh SI must re-plan");
                }
            }
        }
    }

    #[test]
    fn plan_cache_eviction_under_tiny_capacity_stays_exact() {
        // Capacity 1 forces constant eviction; results must not change.
        let cfg = small_cfg(4, ScoreboardMode::Dynamic).to_builder().plan_cache(1).build().unwrap();
        let ta = TransitiveArray::new(cfg);
        let w = det_mat(12, 17, 4, 33);
        let x = det_mat(17, 5, 8, 34);
        let (out, _) = ta.execute_gemm(&w, &x);
        assert_eq!(out, gemm_i32(&w, &x));
        let stats = ta.plan_cache_stats().unwrap();
        assert!(stats.evictions > 0, "capacity 1 must evict: {stats:?}");
    }

    #[test]
    fn zero_weights_are_nearly_free() {
        let ta = TransitiveArray::new(small_cfg(4, ScoreboardMode::Dynamic));
        let w = MatI32::zeros(8, 8);
        let x = det_mat(8, 4, 8, 11);
        let (out, rep) = ta.execute_gemm(&w, &x);
        assert!(out.as_slice().iter().all(|&v| v == 0));
        assert_eq!(rep.total_ops, 0);
        assert_eq!(rep.density, 0.0);
    }
}
