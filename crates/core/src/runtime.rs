//! The tile-execution runtime: a std-only scoped-thread worker pool that
//! shards the sub-tile grid across host cores, plus the [`Batch`] API
//! that simulates many layers concurrently.
//!
//! ## Determinism contract
//!
//! Parallel execution is **bit-exact** against the serial path:
//!
//! * the sampled sub-tile sequence is split into *contiguous* shards, so
//!   every worker walks its sub-tiles in the serial order;
//! * per-worker aggregates are merged in **fixed shard order** (shard 0
//!   first, regardless of which worker finishes first) — see
//!   [`merge_in_shard_order`]. Integer counters are order-independent
//!   anyway; the pinned order makes every run of a given shard count
//!   fold the floating-point energy fields identically;
//! * any `f64` accumulated per sub-tile must be an **exactly
//!   representable** value whose running sums stay below 2⁵³ (today:
//!   `sb_pj` adds `rows × 3.0`, a dyadic-rational multiple). That is
//!   what makes the sharded regrouping `(Σ shard 0) + (Σ shard 1) + …`
//!   equal the serial left-to-right fold *bit-for-bit* — pinning the
//!   merge order alone would not; do not add a non-dyadic per-sub-tile
//!   energy constant without revisiting this (the determinism suite in
//!   `tests/lossless_pipeline.rs` will catch it);
//! * sources are [`PatternSource::fork`]ed per worker and must return the
//!   same patterns per index pair, which the trait already requires.
//!
//! When a source cannot fork, or the grid is too small to shard, the
//! accelerator silently falls back to the serial loop — the report is
//! identical either way.

use crate::accelerator::{GemmReport, TransitiveArray};
use crate::source::PatternSource;
use crate::tiling::GemmShape;
use std::ops::Range;

/// A worker pool configuration for sharded tile execution.
///
/// `Runtime` carries no OS state: threads are spawned scoped per parallel
/// region (`std::thread::scope`), so borrows of the tile grid, the static
/// SI, and the output accumulator flow into workers without `'static`
/// gymnastics or reference counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Runtime {
    threads: usize,
}

impl Runtime {
    /// Creates a runtime with `threads` workers. `0` resolves to one
    /// worker per available core.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 { available_cores() } else { threads };
        Self { threads }
    }

    /// The single-threaded runtime (identical to the historical serial
    /// execution loop).
    pub fn serial() -> Self {
        Self { threads: 1 }
    }

    /// Resolved worker count (≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Splits `0..total` into at most [`Self::threads`] contiguous,
    /// near-equal ranges (never empty; fewer shards when `total` is
    /// small). Concatenating the ranges in order reproduces `0..total`.
    pub fn shards_for(&self, total: usize) -> Vec<Range<usize>> {
        shard_ranges(total, self.threads)
    }

    /// Runs one closure per `(range, state)` shard on the pool and
    /// returns the results **in shard order**. The per-shard `state`
    /// carries owned worker context (a forked pattern source, a mutable
    /// slice of the output accumulator, …) into its thread.
    pub fn run_shards_with<S, T>(
        &self,
        shards: Vec<(Range<usize>, S)>,
        f: impl Fn(usize, Range<usize>, S) -> T + Sync,
    ) -> Vec<T>
    where
        S: Send,
        T: Send,
    {
        if shards.len() <= 1 {
            return shards.into_iter().enumerate().map(|(i, (r, s))| f(i, r, s)).collect();
        }
        let parts = std::thread::scope(|scope| {
            let f = &f;
            let handles: Vec<_> = shards
                .into_iter()
                .enumerate()
                .map(|(i, (r, s))| scope.spawn(move || (i, f(i, r, s))))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("tile-execution worker panicked"))
                .collect::<Vec<_>>()
        });
        merge_in_shard_order(parts)
    }

    /// Shards `0..total` across the pool and returns per-shard results in
    /// shard order.
    pub fn run_sharded<T: Send>(
        &self,
        total: usize,
        f: impl Fn(usize, Range<usize>) -> T + Sync,
    ) -> Vec<T> {
        let shards = self.shards_for(total).into_iter().map(|r| (r, ())).collect();
        self.run_shards_with(shards, |i, r, ()| f(i, r))
    }

    /// Runs independent owned jobs on the pool and returns the results
    /// **in submission order**.
    ///
    /// Workers **claim** jobs dynamically through one shared atomic
    /// counter instead of receiving a pre-assigned round-robin bucket:
    /// a worker that draws cheap jobs keeps claiming while its peers
    /// chew on expensive ones, so a skewed batch never idles most of
    /// the pool behind a static assignment. Each job slot is taken
    /// exactly once (the slot mutex is locked by exactly one claimant,
    /// so it is never contended); results carry their submission index
    /// and are restored to submission order at the end — `f` being
    /// deterministic per `(index, job)`, the claim order cannot leak
    /// into the output.
    pub fn run_jobs<J, T>(&self, jobs: Vec<J>, f: impl Fn(usize, J) -> T + Sync) -> Vec<T>
    where
        J: Send,
        T: Send,
    {
        let workers = self.threads.min(jobs.len());
        if workers <= 1 {
            return jobs.into_iter().enumerate().map(|(i, j)| f(i, j)).collect();
        }
        let slots: Vec<std::sync::Mutex<Option<J>>> =
            jobs.into_iter().map(|j| std::sync::Mutex::new(Some(j))).collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let parts = std::thread::scope(|scope| {
            let (f, slots, next) = (&f, &slots, &next);
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some(slot) = slots.get(i) else { break };
                            let job = slot
                                .lock()
                                .expect("job slot lock")
                                .take()
                                .expect("job claimed exactly once");
                            out.push((i, f(i, job)));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("batch worker panicked"))
                .collect::<Vec<_>>()
        });
        merge_in_shard_order(parts)
    }
}

impl Default for Runtime {
    fn default() -> Self {
        Self::serial()
    }
}

/// Available host cores (≥ 1 even when detection fails).
pub fn available_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Reads the `TA_THREADS` override: `Ok(None)` when unset, the parsed
/// worker count otherwise (`0` = one per core).
///
/// # Errors
///
/// Returns a descriptive error for anything that is not a non-negative
/// integer instead of silently defaulting.
pub fn threads_from_env() -> Result<Option<usize>, String> {
    match std::env::var("TA_THREADS") {
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(_)) => {
            Err("invalid TA_THREADS: not valid unicode".to_string())
        }
        Ok(s) => s.trim().parse::<usize>().map(Some).map_err(|_| {
            format!("invalid TA_THREADS '{s}': expected a non-negative integer (0 = one per core)")
        }),
    }
}

/// Reads the `TA_PLAN_CACHE` override: `Ok(None)` when unset, the parsed
/// plan-cache capacity otherwise (`0` = cache off).
///
/// # Errors
///
/// Returns a descriptive error for anything that is not a non-negative
/// integer instead of silently defaulting.
pub fn plan_cache_from_env() -> Result<Option<usize>, String> {
    match std::env::var("TA_PLAN_CACHE") {
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(_)) => {
            Err("invalid TA_PLAN_CACHE: not valid unicode".to_string())
        }
        Ok(s) => s.trim().parse::<usize>().map(Some).map_err(|_| {
            format!(
                "invalid TA_PLAN_CACHE '{s}': expected a non-negative entry count (0 = cache off)"
            )
        }),
    }
}

/// Reads the `TA_PLAN_CACHE_SHARDS` override: `Ok(None)` when unset, the
/// parsed plan-cache shard count otherwise (`0` = auto: ~4× cores).
///
/// # Errors
///
/// Returns a descriptive error for anything that is not a non-negative
/// integer instead of silently defaulting.
pub fn plan_cache_shards_from_env() -> Result<Option<usize>, String> {
    match std::env::var("TA_PLAN_CACHE_SHARDS") {
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(_)) => {
            Err("invalid TA_PLAN_CACHE_SHARDS: not valid unicode".to_string())
        }
        Ok(s) => s.trim().parse::<usize>().map(Some).map_err(|_| {
            format!(
                "invalid TA_PLAN_CACHE_SHARDS '{s}': expected a non-negative shard count \
                 (0 = auto)"
            )
        }),
    }
}

/// Splits `0..total` into at most `shards` contiguous near-equal ranges.
/// Never returns an empty range; returns no ranges for `total == 0`.
pub fn shard_ranges(total: usize, shards: usize) -> Vec<Range<usize>> {
    if total == 0 {
        return Vec::new();
    }
    let shards = shards.clamp(1, total);
    let base = total / shards;
    let extra = total % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, total);
    out
}

/// Reorders `(shard_index, value)` pairs by shard index and strips the
/// index — the **pinned reduction order** that makes floating-point
/// merges reproducible no matter which worker finished first. Integer
/// counters don't need it (addition commutes exactly); the `f64` energy
/// fields do.
pub fn merge_in_shard_order<T>(mut parts: Vec<(usize, T)>) -> Vec<T> {
    parts.sort_by_key(|(i, _)| *i);
    parts.into_iter().map(|(_, v)| v).collect()
}

/// A batch of layer simulations executed concurrently on the pool.
///
/// Jobs are independent `(shape, source)` pairs; [`Batch::run`] simulates
/// each layer serially *within* one worker (no nested parallelism, so a
/// batch never oversubscribes the pool) and returns reports in
/// **submission order**, each identical to what a lone
/// [`TransitiveArray::simulate_layer`] call would produce.
///
/// # Examples
///
/// ```
/// use ta_core::{Batch, GemmShape, TransArrayConfig, TransitiveArray};
/// use ta_core::{PatternSource, SlicedSource};
/// use ta_bitslice::BitSlicedMatrix;
/// use ta_quant::MatI32;
///
/// let ta = TransitiveArray::new(TransArrayConfig {
///     sample_limit: 16,
///     threads: 2,
///     ..TransArrayConfig::paper_w8()
/// });
/// let w = MatI32::from_fn(64, 64, |r, c| ((r * 64 + c) as i32 % 15) - 7);
/// let sliced = BitSlicedMatrix::slice(&w, 8);
/// let mut batch = Batch::new(&ta);
/// for m in [32, 64] {
///     batch.push(
///         GemmShape::new(64, 64, m),
///         SlicedSource::new(&sliced, ta.config().n_tile(), 8),
///     );
/// }
/// let report = batch.run();
/// assert_eq!(report.reports.len(), 2);
/// assert!(report.total_cycles > 0);
/// ```
pub struct Batch<'a> {
    ta: &'a TransitiveArray,
    runtime: Runtime,
    jobs: Vec<(GemmShape, Box<dyn PatternSource + Send + 'a>)>,
}

impl<'a> Batch<'a> {
    /// Creates a batch over `ta`, sized from its `threads` knob.
    pub fn new(ta: &'a TransitiveArray) -> Self {
        Self::with_runtime(ta, Runtime::new(ta.config().threads))
    }

    /// Creates a batch with an explicit runtime.
    pub fn with_runtime(ta: &'a TransitiveArray, runtime: Runtime) -> Self {
        Self { ta, runtime, jobs: Vec::new() }
    }

    /// Queues one layer simulation.
    pub fn push(&mut self, shape: GemmShape, source: impl PatternSource + Send + 'a) {
        self.jobs.push((shape, Box::new(source)));
    }

    /// Queued job count.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the batch has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Simulates every queued layer concurrently and aggregates the
    /// results in submission order.
    pub fn run(self) -> BatchReport {
        let Self { ta, runtime, jobs } = self;
        let reports = runtime.run_jobs(jobs, |_, (shape, mut source)| {
            ta.simulate_layer_with(shape, source.as_mut(), &Runtime::serial())
        });
        BatchReport::from_reports(reports)
    }
}

/// Aggregate result of a [`Batch`] run. Totals are folded in submission
/// order (the pinned-order contract for the `f64` fields).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Per-layer reports, in submission order.
    pub reports: Vec<GemmReport>,
    /// Sum of per-layer end-to-end cycles (layers run back-to-back).
    pub total_cycles: u64,
    /// Sum of per-layer MAC counts.
    pub total_macs: u64,
    /// Total energy (pJ), folded in submission order.
    pub total_energy_pj: f64,
    /// Total wall-clock seconds at the model frequency, folded in
    /// submission order.
    pub total_seconds: f64,
}

impl BatchReport {
    /// Folds per-layer reports into batch totals (submission order).
    pub fn from_reports(reports: Vec<GemmReport>) -> Self {
        let mut total_cycles = 0u64;
        let mut total_macs = 0u64;
        let mut total_energy_pj = 0.0f64;
        let mut total_seconds = 0.0f64;
        for r in &reports {
            total_cycles += r.cycles;
            total_macs += r.shape.macs();
            total_energy_pj += r.energy.total();
            total_seconds += r.seconds;
        }
        Self { reports, total_cycles, total_macs, total_energy_pj, total_seconds }
    }

    /// Effective MACs per cycle across the batch.
    pub fn macs_per_cycle(&self) -> f64 {
        self.total_macs as f64 / self.total_cycles.max(1) as f64
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::accelerator::Agg;
    use proptest::prelude::*;

    /// Builds a plausible per-worker aggregate from raw generated ints.
    /// `sb_pj` mirrors the production invariant: an exact small-integer
    /// multiple of the per-row scan energy (3.0 pJ).
    fn agg_from(t: (u64, u64, u64, u64)) -> Agg {
        let (a, b, c, d) = t;
        Agg {
            subtile_cycles: a,
            total_ops: b,
            dense_bit_ops: b.saturating_mul(8),
            ape_ops: c,
            rows: d,
            si_misses: a % 97,
            simulated: 1 + (c % 7),
            sb_pj: d as f64 * 3.0,
        }
    }

    proptest! {
        /// The u64 counters commute: merging any permutation of the
        /// per-worker aggregates yields identical counter values.
        #[test]
        fn counter_merge_is_order_independent(
            raw in proptest::collection::vec(
                (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 20), 0..16),
        ) {
            let parts: Vec<Agg> = raw.iter().copied().map(agg_from).collect();
            let in_order = Agg::merge_shards(&parts);
            let mut reversed: Vec<Agg> = parts.clone();
            reversed.reverse();
            // Reversal plus a deterministic rotation cover distinct
            // permutations without needing a shuffle of a non-Clone type.
            let rotated: Vec<Agg> = if parts.is_empty() {
                Vec::new()
            } else {
                let mid = parts.len() / 2;
                parts[mid..].iter().chain(parts[..mid].iter()).cloned().collect()
            };
            for other in [Agg::merge_shards(&reversed), Agg::merge_shards(&rotated)] {
                prop_assert_eq!(other.subtile_cycles, in_order.subtile_cycles);
                prop_assert_eq!(other.total_ops, in_order.total_ops);
                prop_assert_eq!(other.dense_bit_ops, in_order.dense_bit_ops);
                prop_assert_eq!(other.ape_ops, in_order.ape_ops);
                prop_assert_eq!(other.rows, in_order.rows);
                prop_assert_eq!(other.si_misses, in_order.si_misses);
                prop_assert_eq!(other.simulated, in_order.simulated);
            }
        }

        /// The float energy field is folded in **pinned shard order**:
        /// whatever arrival order the workers finish in,
        /// [`merge_in_shard_order`] restores shard order first, so the
        /// f64 fold is bit-identical to the serial fold.
        #[test]
        fn float_merge_is_pinned_to_shard_order(
            raw in proptest::collection::vec(
                (0u64..1 << 30, 0u64..1 << 30, 0u64..1 << 30, 0u64..1 << 20), 1..16),
            seed in 0u64..1024,
        ) {
            let parts: Vec<Agg> = raw.iter().copied().map(agg_from).collect();
            let serial_fold = Agg::merge_shards(&parts);

            // Simulate out-of-order worker completion with a seeded
            // Fisher-Yates permutation of (shard_index, agg) pairs.
            let mut indexed: Vec<(usize, Agg)> =
                parts.iter().cloned().enumerate().collect();
            let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            for i in (1..indexed.len()).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = ((s >> 33) as usize) % (i + 1);
                indexed.swap(i, j);
            }
            let restored = merge_in_shard_order(indexed);
            let merged = Agg::merge_shards(&restored);
            prop_assert_eq!(
                merged.sb_pj.to_bits(),
                serial_fold.sb_pj.to_bits(),
                "pinned-order f64 fold must be bit-identical: {} vs {}",
                merged.sb_pj,
                serial_fold.sb_pj
            );
            prop_assert_eq!(merged.rows, serial_fold.rows);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TransArrayConfig;
    use crate::source::SlicedSource;
    use ta_bitslice::BitSlicedMatrix;
    use ta_quant::MatI32;

    #[test]
    fn shard_ranges_partition_exactly() {
        for total in [0usize, 1, 2, 7, 8, 9, 64, 1000] {
            for shards in [1usize, 2, 3, 8, 64] {
                let ranges = shard_ranges(total, shards);
                let mut next = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, next, "gap at {total}/{shards}");
                    assert!(!r.is_empty(), "empty shard at {total}/{shards}");
                    next = r.end;
                }
                assert_eq!(next, total, "coverage at {total}/{shards}");
                assert!(ranges.len() <= shards.max(1));
                if total > 0 {
                    let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                    let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                    assert!(max - min <= 1, "imbalance at {total}/{shards}: {lens:?}");
                }
            }
        }
    }

    #[test]
    fn run_sharded_returns_shard_order() {
        let rt = Runtime::new(4);
        let out = rt.run_sharded(13, |i, r| (i, r.start, r.end));
        for (pos, (i, _, _)) in out.iter().enumerate() {
            assert_eq!(pos, *i);
        }
        let covered: usize = out.iter().map(|(_, s, e)| e - s).sum();
        assert_eq!(covered, 13);
    }

    #[test]
    fn run_jobs_returns_submission_order() {
        let rt = Runtime::new(3);
        let jobs: Vec<usize> = (0..10).collect();
        let out = rt.run_jobs(jobs, |_, j| j * 2);
        assert_eq!(out, (0..10).map(|j| j * 2).collect::<Vec<_>>());
    }

    #[test]
    fn run_jobs_with_skewed_costs_preserves_order() {
        // Dynamic claiming must still hand back submission order even
        // when job costs are wildly uneven and workers finish out of
        // order.
        let rt = Runtime::new(4);
        let jobs: Vec<usize> = (0..32).collect();
        let out = rt.run_jobs(jobs, |_, j| {
            if j % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            j * j
        });
        assert_eq!(out, (0..32).map(|j| j * j).collect::<Vec<_>>());
    }

    #[test]
    fn merge_pins_order() {
        let parts = vec![(2usize, "c"), (0, "a"), (1, "b")];
        assert_eq!(merge_in_shard_order(parts), vec!["a", "b", "c"]);
    }

    #[test]
    fn zero_threads_resolves_to_cores() {
        assert_eq!(Runtime::new(0).threads(), available_cores());
        assert_eq!(Runtime::serial().threads(), 1);
    }

    #[test]
    fn batch_matches_individual_simulations() {
        let ta = TransitiveArray::new(TransArrayConfig {
            sample_limit: 8,
            threads: 4,
            ..TransArrayConfig::paper_w8()
        });
        let w = MatI32::from_fn(96, 64, |r, c| ((r * 64 + c) as i32 % 15) - 7);
        let sliced = BitSlicedMatrix::slice(&w, 8);
        let shapes =
            [GemmShape::new(96, 64, 32), GemmShape::new(96, 64, 64), GemmShape::new(96, 64, 16)];

        let mut batch = Batch::new(&ta);
        for &s in &shapes {
            batch.push(s, SlicedSource::new(&sliced, ta.config().n_tile(), 8));
        }
        let got = batch.run();

        let serial = TransitiveArray::new(TransArrayConfig {
            sample_limit: 8,
            threads: 1,
            ..TransArrayConfig::paper_w8()
        });
        for (i, &s) in shapes.iter().enumerate() {
            let mut src = SlicedSource::new(&sliced, serial.config().n_tile(), 8);
            let want = serial.simulate_layer(s, &mut src);
            assert_eq!(got.reports[i], want, "layer {i} must match serial");
        }
        assert_eq!(got.total_cycles, got.reports.iter().map(|r| r.cycles).sum::<u64>());
        assert!(got.macs_per_cycle() > 0.0);
    }
}
