//! The request–response front door: [`Session`], [`GemmRequest`],
//! [`GemmResponse`].
//!
//! The historical API is a grab bag of entry points (`execute_gemm`,
//! `simulate_layer`, `Batch`) with panicking validation. A `Session`
//! wraps one accelerator behind a single validated surface:
//!
//! * construction goes through [`TransArrayConfig::try_validate`] (or
//!   the [`crate::ConfigBuilder`]) and returns `Result`, never panics;
//! * work arrives as [`GemmRequest`] values — either an *execute*
//!   request carrying real matrices (functionally exact, bit-identical
//!   to [`ta_quant::gemm_i32`]) or a *simulate* request carrying a shape
//!   plus a [`PatternSource`] (performance-only, LLM-scale);
//! * results come back as [`GemmResponse`] values, and per-pattern
//!   streaming is available through the [`ResultSink`] trait.
//!
//! The serving frontend (`ta-serve`), the examples, and the benches all
//! speak this API; the legacy entry points remain as thin delegates.
//!
//! # Examples
//!
//! ```
//! use ta_core::{GemmRequest, Session, TransArrayConfig};
//! use ta_quant::{gemm_i32, MatI32};
//!
//! let cfg = TransArrayConfig::builder()
//!     .width(4)
//!     .max_transrows(16)
//!     .weight_bits(4)
//!     .m_tile(4)
//!     .sample_limit(0)
//!     .build()
//!     .unwrap();
//! let session = Session::new(cfg).unwrap();
//! let w = MatI32::from_rows(&[&[3, -5, 7, 1], &[-8, 2, 0, 6]]);
//! let x = MatI32::from_rows(&[&[1, 2], &[3, 4], &[5, 6], &[7, 8]]);
//! let resp = session.run(GemmRequest::execute(w.clone(), x.clone())).unwrap();
//! assert_eq!(resp.output.unwrap(), gemm_i32(&w, &x));
//! ```

use crate::accelerator::{GemmReport, TransitiveArray};
use crate::config::TransArrayConfig;
use crate::error::TaError;
use crate::runtime::Runtime;
use crate::source::PatternSource;
use crate::tiling::GemmShape;
use ta_hasse::{NullSink, ResultSink};
use ta_quant::MatI32;

/// One unit of work for a [`Session`]: an exact GEMM execution or a
/// performance-only layer simulation.
pub struct GemmRequest {
    kind: RequestKind,
}

enum RequestKind {
    Execute { weights: MatI32, input: MatI32 },
    Simulate { shape: GemmShape, source: Box<dyn PatternSource + Send> },
}

impl std::fmt::Debug for GemmRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            RequestKind::Execute { .. } => {
                f.debug_struct("GemmRequest::Execute").field("shape", &self.shape()).finish()
            }
            RequestKind::Simulate { .. } => {
                f.debug_struct("GemmRequest::Simulate").field("shape", &self.shape()).finish()
            }
        }
    }
}

impl GemmRequest {
    /// An exact functional GEMM: `weights × input`, bit-identical to
    /// [`ta_quant::gemm_i32`]. The response carries the output matrix.
    pub fn execute(weights: MatI32, input: MatI32) -> Self {
        Self { kind: RequestKind::Execute { weights, input } }
    }

    /// A performance-only layer simulation from a pattern source (the
    /// LLM-scale path — no output matrix, just the report).
    pub fn simulate(shape: GemmShape, source: impl PatternSource + Send + 'static) -> Self {
        Self { kind: RequestKind::Simulate { shape, source: Box::new(source) } }
    }

    /// The GEMM shape this request covers.
    pub fn shape(&self) -> GemmShape {
        match &self.kind {
            RequestKind::Execute { weights, input } => {
                GemmShape::new(weights.rows(), weights.cols(), input.cols())
            }
            RequestKind::Simulate { shape, .. } => *shape,
        }
    }

    /// Whether this is an execute (vs. simulate) request.
    pub fn is_execute(&self) -> bool {
        matches!(self.kind, RequestKind::Execute { .. })
    }

    /// Zero-pads an execute request's input along the column (token)
    /// dimension up to `m` columns, so a shape-bucketing batcher can run
    /// every request in a bucket at one uniform shape. The extra output
    /// columns are exactly zero (the batcher slices them back off), so
    /// padding never changes a single output bit. A no-op for simulate
    /// requests and when the input already has at least `m` columns.
    #[must_use]
    pub fn padded_to(self, m: usize) -> Self {
        match self.kind {
            RequestKind::Execute { weights, input } if input.cols() < m => {
                let padded = MatI32::from_fn(input.rows(), m, |r, c| {
                    if c < input.cols() {
                        input.get(r, c)
                    } else {
                        0
                    }
                });
                Self { kind: RequestKind::Execute { weights, input: padded } }
            }
            other => Self { kind: other },
        }
    }
}

/// The result of one [`GemmRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct GemmResponse {
    /// The exact output matrix — `Some` for execute requests, `None`
    /// for simulate requests.
    pub output: Option<MatI32>,
    /// The performance report (always present, bit-identical to the
    /// legacy entry points').
    pub report: GemmReport,
}

/// A validated handle on one accelerator: the request–response API.
///
/// Clones share the accelerator's plan cache (same semantics as cloning
/// [`TransitiveArray`]); a `Session` is `Send + Sync`, so a serving
/// frontend shares one behind an `Arc` across workers.
#[derive(Debug, Clone)]
pub struct Session {
    ta: TransitiveArray,
}

impl Session {
    /// Validates the configuration and opens a session on it.
    ///
    /// # Errors
    ///
    /// [`TaError::Config`] when the configuration is inconsistent.
    pub fn new(cfg: TransArrayConfig) -> Result<Self, TaError> {
        cfg.try_validate()?;
        Ok(Self { ta: TransitiveArray::new(cfg) })
    }

    /// Wraps an already-constructed accelerator (which validated its
    /// configuration at construction).
    pub fn from_accelerator(ta: TransitiveArray) -> Self {
        Self { ta }
    }

    /// The configuration this session runs.
    pub fn config(&self) -> &TransArrayConfig {
        self.ta.config()
    }

    /// The underlying accelerator (legacy entry points, plan-cache
    /// statistics).
    pub fn accelerator(&self) -> &TransitiveArray {
        &self.ta
    }

    /// Runs one request on the session's runtime (the `threads` knob).
    ///
    /// # Errors
    ///
    /// [`TaError::ShapeMismatch`] / [`TaError::WeightRange`] /
    /// [`TaError::InputRange`] for invalid execute operands,
    /// [`TaError::SourceWidthMismatch`] for a simulate source at the
    /// wrong TransRow width.
    pub fn run(&self, request: GemmRequest) -> Result<GemmResponse, TaError> {
        self.validate(&request)?;
        Ok(self.run_validated(request, &Runtime::new(self.config().threads), &mut NullSink))
    }

    /// [`Self::run`] pinned to one worker: the whole request executes
    /// serially on the calling thread. Reports are bit-identical to
    /// [`Self::run`] (the runtime's determinism contract); a serving
    /// scheduler uses this to run many requests concurrently without
    /// oversubscribing the host.
    ///
    /// # Errors
    ///
    /// Same as [`Self::run`].
    pub fn run_serial(&self, request: GemmRequest) -> Result<GemmResponse, TaError> {
        self.validate(&request)?;
        Ok(self.run_validated(request, &Runtime::serial(), &mut NullSink))
    }

    /// [`Self::run_serial`] that streams every computed pattern result
    /// of an execute request into `sink` as it is finalized (simulate
    /// requests produce no functional results and emit nothing).
    ///
    /// # Errors
    ///
    /// Same as [`Self::run`].
    pub fn run_streaming(
        &self,
        request: GemmRequest,
        sink: &mut dyn ResultSink,
    ) -> Result<GemmResponse, TaError> {
        self.validate(&request)?;
        Ok(self.run_validated(request, &Runtime::serial(), sink))
    }

    /// Runs many requests concurrently on the session's worker pool and
    /// returns responses in submission order. Every request is validated
    /// *before* any executes (all-or-nothing); each request then runs
    /// serially within one worker, exactly like [`crate::Batch`] pins
    /// its jobs, so every response is bit-identical to a lone
    /// [`Self::run_serial`] call.
    ///
    /// # Errors
    ///
    /// The first invalid request's error; no work runs in that case.
    pub fn run_batch(&self, requests: Vec<GemmRequest>) -> Result<Vec<GemmResponse>, TaError> {
        for request in &requests {
            self.validate(request)?;
        }
        let rt = Runtime::new(self.config().threads);
        Ok(rt.run_jobs(requests, |_, request| {
            self.run_validated(request, &Runtime::serial(), &mut NullSink)
        }))
    }

    /// Validates a request against the configuration without running it.
    ///
    /// # Errors
    ///
    /// Same as [`Self::run`].
    pub fn validate(&self, request: &GemmRequest) -> Result<(), TaError> {
        match &request.kind {
            RequestKind::Execute { weights, input } => self.ta.check_gemm_operands(weights, input),
            RequestKind::Simulate { source, .. } => {
                let (sw, aw) = (source.width(), self.config().width);
                if sw != aw {
                    return Err(TaError::SourceWidthMismatch { source: sw, accelerator: aw });
                }
                Ok(())
            }
        }
    }

    /// The post-validation dispatch shared by every `run_*` flavor.
    fn run_validated(
        &self,
        request: GemmRequest,
        rt: &Runtime,
        sink: &mut dyn ResultSink,
    ) -> GemmResponse {
        match request.kind {
            RequestKind::Execute { weights, input } => {
                let (output, report) = self.ta.execute_gemm_with(&weights, &input, rt, sink);
                GemmResponse { output: Some(output), report }
            }
            RequestKind::Simulate { shape, mut source } => {
                let report = self.ta.simulate_layer_with(shape, source.as_mut(), rt);
                GemmResponse { output: None, report }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScoreboardMode;
    use crate::error::ConfigError;
    use crate::source::SlicedSource;
    use ta_bitslice::BitSlicedMatrix;
    use ta_hasse::VecSink;
    use ta_quant::gemm_i32;

    fn small_cfg() -> TransArrayConfig {
        TransArrayConfig::builder()
            .width(4)
            .max_transrows(16)
            .weight_bits(4)
            .units(2)
            .m_tile(4)
            .sample_limit(0)
            .build()
            .unwrap()
    }

    fn det_mat(rows: usize, cols: usize, bits: u32, seed: i64) -> MatI32 {
        let hi = (1i64 << (bits - 1)) - 1;
        let lo = -(1i64 << (bits - 1));
        MatI32::from_fn(rows, cols, |r, c| {
            let x = (r as i64 * 2654435761 + c as i64 * 40503 + seed * 9973) % (hi - lo + 1);
            (if x < 0 { x + (hi - lo + 1) } else { x } + lo) as i32
        })
    }

    #[test]
    fn session_rejects_invalid_config() {
        let cfg = TransArrayConfig { units: 0, ..TransArrayConfig::paper_w8() };
        let err = Session::new(cfg).unwrap_err();
        assert_eq!(err, TaError::Config(ConfigError::ZeroUnits));
    }

    #[test]
    fn execute_request_matches_legacy_entry_point() {
        let session = Session::new(small_cfg()).unwrap();
        let w = det_mat(10, 13, 4, 1);
        let x = det_mat(13, 7, 8, 2);
        let resp = session.run(GemmRequest::execute(w.clone(), x.clone())).unwrap();
        let (want_out, want_rep) = session.accelerator().execute_gemm(&w, &x);
        assert_eq!(resp.output.as_ref().unwrap(), &want_out);
        assert_eq!(resp.report, want_rep);
        assert_eq!(resp.output.unwrap(), gemm_i32(&w, &x));
    }

    #[test]
    fn shape_mismatch_is_an_error_not_a_panic() {
        let session = Session::new(small_cfg()).unwrap();
        let w = det_mat(4, 5, 4, 3);
        let x = det_mat(6, 2, 8, 4);
        let err = session.run(GemmRequest::execute(w, x)).unwrap_err();
        assert_eq!(err, TaError::ShapeMismatch { weight_cols: 5, input_rows: 6 });
    }

    #[test]
    fn out_of_range_operands_are_errors() {
        let session = Session::new(small_cfg()).unwrap();
        // 4-bit weights cannot hold 100.
        let w = MatI32::from_fn(4, 4, |_, _| 100);
        let x = det_mat(4, 2, 8, 5);
        assert_eq!(
            session.run(GemmRequest::execute(w, x)).unwrap_err(),
            TaError::WeightRange { weight_bits: 4 }
        );
        let w = det_mat(4, 4, 4, 6);
        let x = MatI32::from_fn(4, 2, |_, _| 1 << 20);
        assert_eq!(
            session.run(GemmRequest::execute(w, x)).unwrap_err(),
            TaError::InputRange { act_bits: 8 }
        );
    }

    #[test]
    fn simulate_request_matches_simulate_layer() {
        let session = Session::new(small_cfg()).unwrap();
        let w = det_mat(16, 16, 4, 7);
        let sliced = BitSlicedMatrix::slice(&w, 4);
        let n_tile = session.config().n_tile();
        let shape = GemmShape::new(16, 16, 8);
        let resp = session
            .run(GemmRequest::simulate(
                shape,
                OwnedSource { sliced: sliced.clone(), n_tile, width: 4 },
            ))
            .unwrap();
        assert!(resp.output.is_none());
        let mut src = SlicedSource::new(&sliced, n_tile, 4);
        let want = session.accelerator().simulate_layer(shape, &mut src);
        assert_eq!(resp.report, want);
    }

    /// A tiny owning source so simulate requests can be `'static`.
    struct OwnedSource {
        sliced: BitSlicedMatrix,
        n_tile: usize,
        width: u32,
    }

    impl PatternSource for OwnedSource {
        fn width(&self) -> u32 {
            self.width
        }
        fn subtile_patterns(&mut self, nt: usize, kc: usize) -> Vec<u16> {
            SlicedSource::new(&self.sliced, self.n_tile, self.width).subtile_patterns(nt, kc)
        }
        fn rows_per_subtile(&self) -> usize {
            SlicedSource::new(&self.sliced, self.n_tile, self.width).rows_per_subtile()
        }
    }

    #[test]
    fn simulate_request_rejects_width_mismatch() {
        let session = Session::new(small_cfg()).unwrap();
        let w = det_mat(8, 8, 4, 8);
        let sliced = BitSlicedMatrix::slice(&w, 4);
        let err = session
            .run(GemmRequest::simulate(
                GemmShape::new(8, 8, 4),
                OwnedSource { sliced, n_tile: 4, width: 8 },
            ))
            .unwrap_err();
        assert_eq!(err, TaError::SourceWidthMismatch { source: 8, accelerator: 4 });
    }

    #[test]
    fn serial_and_parallel_runs_are_bit_identical() {
        let parallel = Session::new(TransArrayConfig { threads: 4, ..small_cfg() }).unwrap();
        let w = det_mat(24, 21, 4, 9);
        let x = det_mat(21, 11, 8, 10);
        let a = parallel.run(GemmRequest::execute(w.clone(), x.clone())).unwrap();
        let b = parallel.run_serial(GemmRequest::execute(w, x)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn run_batch_matches_individual_runs_in_order() {
        let session = Session::new(TransArrayConfig { threads: 4, ..small_cfg() }).unwrap();
        let reqs: Vec<(MatI32, MatI32)> = (0..6)
            .map(|i| (det_mat(8 + i, 12, 4, 20 + i as i64), det_mat(12, 3 + i, 8, 30 + i as i64)))
            .collect();
        let batch: Vec<GemmRequest> =
            reqs.iter().map(|(w, x)| GemmRequest::execute(w.clone(), x.clone())).collect();
        let got = session.run_batch(batch).unwrap();
        assert_eq!(got.len(), reqs.len());
        for (resp, (w, x)) in got.iter().zip(&reqs) {
            let want = session.run_serial(GemmRequest::execute(w.clone(), x.clone())).unwrap();
            assert_eq!(resp, &want);
        }
    }

    #[test]
    fn run_batch_is_all_or_nothing() {
        let session = Session::new(small_cfg()).unwrap();
        let good = GemmRequest::execute(det_mat(4, 4, 4, 1), det_mat(4, 2, 8, 2));
        let bad = GemmRequest::execute(det_mat(4, 5, 4, 3), det_mat(6, 2, 8, 4));
        let err = session.run_batch(vec![good, bad]).unwrap_err();
        assert!(matches!(err, TaError::ShapeMismatch { .. }));
    }

    #[test]
    fn streaming_emits_every_computed_pattern_and_stays_exact() {
        for mode in [ScoreboardMode::Dynamic, ScoreboardMode::Static] {
            let cfg = TransArrayConfig { scoreboard_mode: mode, ..small_cfg() };
            let session = Session::new(cfg).unwrap();
            let w = det_mat(10, 13, 4, 11);
            let x = det_mat(13, 7, 8, 12);
            let mut sink = VecSink::new();
            let resp = session
                .run_streaming(GemmRequest::execute(w.clone(), x.clone()), &mut sink)
                .unwrap();
            assert_eq!(resp.output.as_ref().unwrap(), &gemm_i32(&w, &x), "{mode:?}");
            let want = session.run_serial(GemmRequest::execute(w, x)).unwrap();
            assert_eq!(resp, want, "{mode:?}: streaming must not change the response");
            assert!(!sink.emitted.is_empty(), "{mode:?}: sink must see emissions");
            assert!(
                sink.emitted.iter().all(|(p, v)| *p != 0 && !v.is_empty()),
                "{mode:?}: only non-trivial patterns are computed"
            );
        }
    }

    #[test]
    fn streaming_with_plan_cache_still_emits_on_hits() {
        let cfg = small_cfg().to_builder().plan_cache(64).build().unwrap();
        let session = Session::new(cfg).unwrap();
        let w = det_mat(12, 17, 4, 13);
        let x = det_mat(17, 5, 8, 14);
        let mut cold = VecSink::new();
        let a =
            session.run_streaming(GemmRequest::execute(w.clone(), x.clone()), &mut cold).unwrap();
        let mut warm = VecSink::new();
        let b = session.run_streaming(GemmRequest::execute(w, x), &mut warm).unwrap();
        assert_eq!(a, b, "warm replay must be bit-identical");
        assert_eq!(cold.emitted, warm.emitted, "cache hits must stream the same chunks");
        assert!(session.accelerator().plan_cache_stats().unwrap().hits > 0);
    }

    #[test]
    fn padding_never_changes_output_bits() {
        let session = Session::new(small_cfg()).unwrap();
        let w = det_mat(9, 12, 4, 15);
        let x = det_mat(12, 5, 8, 16);
        let padded = GemmRequest::execute(w.clone(), x.clone()).padded_to(8);
        assert_eq!(padded.shape(), GemmShape::new(9, 12, 8));
        let resp = session.run_serial(padded).unwrap();
        let out = resp.output.unwrap();
        let want = gemm_i32(&w, &x);
        for r in 0..9 {
            for c in 0..8 {
                let expect = if c < 5 { want.get(r, c) } else { 0 };
                assert_eq!(out.get(r, c), expect, "row {r} col {c}");
            }
        }
        // No-op cases: already wide enough, or a simulate request.
        let req = GemmRequest::execute(w, x).padded_to(3);
        assert_eq!(req.shape().m, 5, "padded_to never shrinks");
    }
}
