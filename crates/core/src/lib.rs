//! # ta-core — the Transitive Array accelerator
//!
//! The paper's primary contribution (§4): a multiplication-free GEMM
//! accelerator exploiting transitive sparsity. This crate assembles the
//! Scoreboard (`ta-hasse`), the bit-slicing engine (`ta-bitslice`), and
//! the hardware substrates (`ta-sim`) into:
//!
//! * [`TransArrayConfig`] — Table 1's design point (T=8, 256 TransRows,
//!   6 units, 80 KB/unit buffers) with every knob the DSE sweeps;
//! * [`process_dynamic`] / [`process_static`] — one unit processing one
//!   sub-tile (Fig. 8), in dynamic- or static-Scoreboard mode;
//! * [`TransitiveArray`] — the full accelerator: tiled layer simulation
//!   with deterministic sampling for LLM-scale layers, DRAM traffic,
//!   cycle and energy reports ([`GemmReport`]) — plus
//!   [`TransitiveArray::execute_gemm`], the exact functional engine that
//!   proves the architecture lossless against [`ta_quant::gemm_i32`];
//! * [`runtime`] — the tile-execution runtime: a std-only scoped-thread
//!   worker pool that shards the sub-tile grid across cores (the
//!   `threads` knob of [`TransArrayConfig`]) with a bit-exact
//!   determinism contract, and the [`Batch`] API that simulates many
//!   layers concurrently;
//! * [`Session`] / [`GemmRequest`] / [`GemmResponse`] — the validated
//!   request–response front door ([`ConfigBuilder`] + [`TaError`])
//!   behind which `ta-serve` runs a multi-tenant serving frontend.
//!
//! ## Quick example
//!
//! ```
//! use ta_core::{TransArrayConfig, TransitiveArray};
//! use ta_quant::{gemm_i32, MatI32};
//!
//! let cfg = TransArrayConfig {
//!     width: 4, max_transrows: 16, weight_bits: 4, m_tile: 4,
//!     sample_limit: 0, ..TransArrayConfig::paper_w8()
//! };
//! let ta = TransitiveArray::new(cfg);
//! let w = MatI32::from_rows(&[&[3, -5, 7, 1], &[-8, 2, 0, 6]]);
//! let x = MatI32::from_rows(&[&[1, 2], &[3, 4], &[5, 6], &[7, 8]]);
//! let (out, report) = ta.execute_gemm(&w, &x);
//! assert_eq!(out, gemm_i32(&w, &x));          // lossless
//! assert!(report.density < 1.0);              // and sparse
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod accelerator;
mod config;
pub mod error;
pub mod runtime;
mod session;
mod source;
mod tiling;
mod unit;

pub use accelerator::{GemmReport, TransitiveArray};
pub use config::{ConfigBuilder, ScoreboardMode, TransArrayConfig};
pub use error::{ConfigError, TaError};
pub use runtime::{Batch, BatchReport, Runtime};
pub use session::{GemmRequest, GemmResponse, Session};
pub use source::{PatternSource, SlicedSource};
pub use tiling::{dram_traffic, GemmShape, TrafficReport};
pub use unit::{
    evaluate_subtile, evaluate_subtile_into, process_dynamic, process_static, process_subtile,
    xbar_group_conflicts, SubtileReport,
};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use ta_quant::{gemm_i32, MatI32};

    fn mat(bits: u32, rows: usize, cols: usize) -> impl Strategy<Value = MatI32> {
        let hi = (1i32 << (bits - 1)) - 1;
        let lo = -(1i32 << (bits - 1));
        proptest::collection::vec(lo..=hi, rows * cols)
            .prop_map(move |v| MatI32::from_vec(rows, cols, v))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The headline invariant: TransArray GEMM ≡ dense integer GEMM,
        /// bit-exactly, for arbitrary matrices in both Scoreboard modes
        /// and both weight precisions.
        #[test]
        fn transitive_gemm_is_lossless(
            dims in (1usize..8, 1usize..12, 1usize..5),
            static_mode in proptest::bool::ANY,
            weight_bits in prop_oneof![Just(4u32), Just(8u32)],
            seed in 0i64..100_000,
        ) {
            let (n, k, m) = dims;
            let hi = (1i64 << (weight_bits - 1)) - 1;
            let span = 2 * hi + 1;
            let w = MatI32::from_fn(n, k, |r, c| {
                let x = (r as i64 * 2654435761 + c as i64 * 40503 + seed * 7919) % span;
                (x - hi) as i32
            });
            let x = MatI32::from_fn(k, m, |r, c| {
                let v = (r as i64 * 104729 + c as i64 * 1299709 + seed) % 255;
                (v - 127) as i32
            });
            let cfg = TransArrayConfig {
                width: 4,
                max_transrows: weight_bits as usize * 2,
                weight_bits,
                m_tile: 4,
                units: 2,
                sample_limit: 0,
                scoreboard_mode: if static_mode {
                    ScoreboardMode::Static
                } else {
                    ScoreboardMode::Dynamic
                },
                ..TransArrayConfig::paper_w8()
            };
            let ta = TransitiveArray::new(cfg);
            let (out, rep) = ta.execute_gemm(&w, &x);
            prop_assert_eq!(out, gemm_i32(&w, &x));
            prop_assert!(rep.density <= 1.0 + 1e-9);
        }

        /// Random-valued matrices drawn directly by proptest are exact too
        /// (deeper value coverage than the seeded variant).
        #[test]
        fn lossless_on_proptest_values(
            w in mat(4, 4, 6),
            x in mat(8, 6, 3),
        ) {
            let cfg = TransArrayConfig {
                width: 4, max_transrows: 8, weight_bits: 4, m_tile: 2,
                units: 1, sample_limit: 0,
                ..TransArrayConfig::paper_w8()
            };
            let ta = TransitiveArray::new(cfg);
            let (out, _) = ta.execute_gemm(&w, &x);
            prop_assert_eq!(out, gemm_i32(&w, &x));
        }

        /// Density never exceeds 1 and ops respect the dense bound.
        #[test]
        fn density_bounds(w in mat(4, 8, 8)) {
            let x = MatI32::from_fn(8, 2, |r, c| (r as i32 - c as i32) * 3);
            let cfg = TransArrayConfig {
                width: 4, max_transrows: 8, weight_bits: 4, m_tile: 2,
                units: 1, sample_limit: 0,
                ..TransArrayConfig::paper_w8()
            };
            let ta = TransitiveArray::new(cfg);
            let (_, rep) = ta.execute_gemm(&w, &x);
            prop_assert!(rep.density <= 1.0 + 1e-9, "density {}", rep.density);
            prop_assert!(rep.total_ops <= rep.dense_bit_ops);
        }
    }
}
