//! GEMM shapes and the shared DRAM-traffic/tiling policy (Fig. 8 step ①).
//!
//! The traffic model is deliberately shared by the TransArray and every
//! baseline (§5.1 methodology): given the on-chip buffer budget it picks
//! the cheaper of the two canonical loop orders (input-block-resident vs
//! weight-block-resident) and reports the resulting DRAM bytes.

/// A GEMM: weights `N×K`, inputs `K×M`, outputs `N×M`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmShape {
    /// Weight rows (output channels).
    pub n: usize,
    /// Reduction dimension.
    pub k: usize,
    /// Input columns (tokens / spatial positions).
    pub m: usize,
}

impl GemmShape {
    /// Creates a shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(n: usize, k: usize, m: usize) -> Self {
        assert!(n > 0 && k > 0 && m > 0, "GEMM dimensions must be non-zero");
        Self { n, k, m }
    }

    /// Multiply-accumulate count.
    pub fn macs(&self) -> u64 {
        self.n as u64 * self.k as u64 * self.m as u64
    }

    /// Weight bytes at `bits` precision.
    pub fn weight_bytes(&self, bits: u32) -> u64 {
        (self.n as u64 * self.k as u64 * bits as u64).div_ceil(8)
    }

    /// Input bytes at `bits` precision.
    pub fn input_bytes(&self, bits: u32) -> u64 {
        (self.k as u64 * self.m as u64 * bits as u64).div_ceil(8)
    }

    /// Output bytes (requantized to 8-bit plus per-group scales ≈ 1 B/elem
    /// — every accelerator in the roster writes back quantized outputs).
    pub fn output_bytes(&self) -> u64 {
        self.n as u64 * self.m as u64
    }
}

/// DRAM traffic of one GEMM under the shared tiling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficReport {
    /// Weight bytes streamed (including reloads).
    pub weight_bytes: u64,
    /// Input bytes streamed (including reloads).
    pub input_bytes: u64,
    /// Output bytes written.
    pub output_bytes: u64,
}

impl TrafficReport {
    /// Total bytes on the memory channel.
    pub fn total(&self) -> u64 {
        self.weight_bytes + self.input_bytes + self.output_bytes
    }
}

/// Computes DRAM traffic for `shape` with the given precisions and
/// on-chip buffer budget (bytes). Picks the cheaper canonical loop order:
///
/// * **input-resident**: an input block of `m_blk` columns stays on chip;
///   weights stream once per block → `W · ⌈M/m_blk⌉ + I + O`;
/// * **weight-resident**: a weight block of `n_blk` rows stays on chip;
///   inputs stream once per block → `W + I · ⌈N/n_blk⌉ + O`.
///
/// Half the buffer is reserved for the resident block (the other half
/// double-buffers the streaming side).
pub fn dram_traffic(
    shape: GemmShape,
    weight_bits: u32,
    act_bits: u32,
    buffer_bytes: u64,
) -> TrafficReport {
    let w = shape.weight_bytes(weight_bits);
    let i = shape.input_bytes(act_bits);
    let o = shape.output_bytes();
    let resident = (buffer_bytes / 2).max(1);

    // Input-resident: block of m_blk columns needs K·m_blk·act_bits/8 B.
    let bytes_per_col = (shape.k as u64 * act_bits as u64).div_ceil(8).max(1);
    let m_blk = (resident / bytes_per_col).max(1);
    let input_resident = w * (shape.m as u64).div_ceil(m_blk) + i + o;

    // Weight-resident: block of n_blk rows needs K·n_blk·weight_bits/8 B.
    let bytes_per_row = (shape.k as u64 * weight_bits as u64).div_ceil(8).max(1);
    let n_blk = (resident / bytes_per_row).max(1);
    let weight_resident = w + i * (shape.n as u64).div_ceil(n_blk) + o;

    if input_resident <= weight_resident {
        TrafficReport {
            weight_bytes: w * (shape.m as u64).div_ceil(m_blk),
            input_bytes: i,
            output_bytes: o,
        }
    } else {
        TrafficReport {
            weight_bytes: w,
            input_bytes: i * (shape.n as u64).div_ceil(n_blk),
            output_bytes: o,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_byte_math() {
        let s = GemmShape::new(64, 128, 32);
        assert_eq!(s.macs(), 64 * 128 * 32);
        assert_eq!(s.weight_bytes(8), 64 * 128);
        assert_eq!(s.weight_bytes(4), 64 * 128 / 2);
        assert_eq!(s.input_bytes(8), 128 * 32);
        assert_eq!(s.output_bytes(), 64 * 32);
    }

    #[test]
    fn everything_fits_no_reloads() {
        let s = GemmShape::new(32, 64, 16);
        let t = dram_traffic(s, 8, 8, 1 << 20);
        assert_eq!(t.weight_bytes, s.weight_bytes(8));
        assert_eq!(t.input_bytes, s.input_bytes(8));
        assert_eq!(t.total(), s.weight_bytes(8) + s.input_bytes(8) + s.output_bytes());
    }

    #[test]
    fn tiny_buffer_forces_reloads() {
        let s = GemmShape::new(1024, 1024, 1024);
        let small = dram_traffic(s, 8, 8, 64 * 1024);
        let large = dram_traffic(s, 8, 8, 16 << 20);
        assert!(small.total() > large.total());
    }

    #[test]
    fn four_bit_weights_halve_weight_traffic() {
        let s = GemmShape::new(4096, 4096, 2048);
        let w8 = dram_traffic(s, 8, 8, 480 * 1024);
        let w4 = dram_traffic(s, 4, 8, 480 * 1024);
        assert!(w4.weight_bytes * 2 <= w8.weight_bytes + w8.weight_bytes / 8);
        assert!(w4.total() < w8.total());
    }

    #[test]
    fn picks_cheaper_loop_order() {
        // Very wide input (M >> N): weight-resident wins.
        let wide = GemmShape::new(64, 1024, 65536);
        let t = dram_traffic(wide, 8, 8, 256 * 1024);
        assert_eq!(t.input_bytes, wide.input_bytes(8), "input must stream once");
        // Very tall weights (N >> M): input-resident wins.
        let tall = GemmShape::new(65536, 1024, 64);
        let t = dram_traffic(tall, 8, 8, 256 * 1024);
        assert_eq!(t.weight_bytes, tall.weight_bytes(8), "weights must stream once");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dims_rejected() {
        let _ = GemmShape::new(0, 1, 1);
    }
}
