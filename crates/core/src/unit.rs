//! One TransArray unit processing one sub-tile (Fig. 7(b), Fig. 8).
//!
//! Pipeline per sub-tile: PopCount sort → Scoreboard (dynamic) or SI
//! lookup (static) → dispatch (XOR pruning + Benes/crossbar routing) →
//! PPE (prefix adds) → APE (output accumulation). This module produces
//! both the cycle/op report and, on demand, the functional node results.
//!
//! Functional evaluation is slab-resident: every diff-bit add lands in an
//! [`ExecScratch`] whose row accumulation runs through the word-parallel
//! `ta_bitslice::kernels` facade (fused multi-row adds), so no per-bit
//! inner loop survives on the unit's execution path — the nested-`Vec`
//! oracles ([`evaluate_subtile`], `ExecutionPlan::evaluate`) are the only
//! remaining bit-at-a-time walkers, retained for equivalence testing.

use crate::config::{ScoreboardMode, TransArrayConfig};
use std::sync::Arc;
use ta_bitslice::{bitonic_depth, TileView};
use ta_hasse::{
    CachedPlan, ExecScratch, ExecutionPlan, NullSink, PlanKey, ResultSink, Scoreboard,
    SharedPlanCache, StaticSi, StaticTileReport, TileStats,
};
use ta_sim::Crossbar;

/// Per-sub-tile performance report.
#[derive(Debug, Clone, PartialEq)]
pub struct SubtileReport {
    /// TransRows processed.
    pub rows: usize,
    /// Accumulate ops (PPE slots incl. transit + outlier extras).
    pub total_ops: u64,
    /// Dense bit-ops baseline (`rows × T`).
    pub dense_bit_ops: u64,
    /// Scoreboard-stage cycles (0 in static mode — prefetched SI).
    pub scoreboard_cycles: u64,
    /// PPE-stage cycles (slowest lane).
    pub ppe_cycles: u64,
    /// APE-stage cycles (slowest lane).
    pub ape_cycles: u64,
    /// Crossbar conflict stall cycles for output-bank writes.
    pub xbar_cycles: u64,
    /// Steady-state cycles this sub-tile occupies the unit.
    pub cycles: u64,
    /// Bitonic sorter fill latency (amortized across the tile stream).
    pub sort_depth: u32,
    /// SI misses (static mode only).
    pub si_misses: u64,
    /// Detailed dynamic-mode statistics (None in static mode). Shared
    /// (`Arc`) so plan-cache hits hand out the memoized statistics
    /// without deep-cloning the lane vectors per sub-tile; equality
    /// still compares the contents.
    pub stats: Option<Arc<TileStats>>,
}

/// Assembles the dynamic-mode [`SubtileReport`] from the tile's (possibly
/// memoized) statistics. The crossbar bound is recomputed per tile — it
/// depends on row *positions*, which the multiset-keyed plan cache
/// deliberately does not capture; everything multiset-determined comes
/// from `stats`, so cached and fresh reports are identical by
/// construction. Takes the shared `Arc` so a cache hit hands out the
/// memoized statistics without deep-cloning them; the fresh path pays
/// one `Arc` allocation.
fn dynamic_report(
    cfg: &TransArrayConfig,
    patterns: &[u16],
    stats: Arc<TileStats>,
) -> SubtileReport {
    let xbar_cycles = xbar_conflict_cycles(cfg, patterns);
    let scoreboard_cycles = stats.scoreboard_cycles;
    let ppe = stats.ppe_cycles();
    let ape = stats.ape_cycles().max(xbar_cycles);
    let cycles = scoreboard_cycles.max(ppe).max(ape).max(1);
    SubtileReport {
        rows: patterns.len(),
        total_ops: stats.total_ops,
        dense_bit_ops: stats.dense_bit_ops,
        scoreboard_cycles,
        ppe_cycles: ppe,
        ape_cycles: ape,
        xbar_cycles,
        cycles,
        sort_depth: stats.sort_depth,
        si_misses: 0,
        stats: Some(stats),
    }
}

/// Assembles the static-mode [`SubtileReport`] from the (possibly
/// memoized) SI replay report; see [`dynamic_report`] for the
/// cached-equals-fresh argument.
fn static_report(
    cfg: &TransArrayConfig,
    patterns: &[u16],
    rep: &StaticTileReport,
) -> SubtileReport {
    let xbar_cycles = xbar_conflict_cycles(cfg, patterns);
    let ppe = rep.lane_ops.iter().copied().max().unwrap_or(0);
    let ape = rep.lane_rows.iter().copied().max().unwrap_or(0).max(xbar_cycles);
    let cycles = ppe.max(ape).max(1);
    SubtileReport {
        rows: patterns.len(),
        total_ops: rep.total_ops,
        dense_bit_ops: rep.dense_bit_ops,
        scoreboard_cycles: 0,
        ppe_cycles: ppe,
        ape_cycles: ape,
        xbar_cycles,
        cycles,
        sort_depth: bitonic_depth(patterns.len()),
        si_misses: rep.si_misses,
        stats: None,
    }
}

/// Processes one sub-tile in **dynamic** mode: builds the private SI with
/// the hardware Scoreboard and reports cycles.
pub fn process_dynamic(cfg: &TransArrayConfig, patterns: &[u16]) -> (Scoreboard, SubtileReport) {
    let sb = Scoreboard::build(cfg.scoreboard_config(), patterns.iter().copied());
    let stats = Arc::new(TileStats::from_scoreboard(&sb));
    let report = dynamic_report(cfg, patterns, stats);
    (sb, report)
}

/// Processes one sub-tile in **static** mode: the shared SI was prefetched
/// from DRAM; no Scoreboard stage runs, but chain materialization pays SI
/// misses.
pub fn process_static(cfg: &TransArrayConfig, si: &StaticSi, patterns: &[u16]) -> SubtileReport {
    static_report(cfg, patterns, &si.evaluate_tile(patterns))
}

/// Processes a sub-tile in whichever mode the config selects, building
/// the static SI lazily from the caller-provided table.
pub fn process_subtile(
    cfg: &TransArrayConfig,
    static_si: Option<&StaticSi>,
    patterns: &[u16],
) -> SubtileReport {
    match cfg.scoreboard_mode {
        ScoreboardMode::Dynamic => process_dynamic(cfg, patterns).1,
        ScoreboardMode::Static => {
            let si = static_si.expect("static mode requires a prefetched SI");
            process_static(cfg, si, patterns)
        }
    }
}

/// The canonical plan-cache key for one sub-tile under this accelerator
/// configuration: the pattern multiset plus every Scoreboard knob, scoped
/// to the static SI instance in static mode.
fn plan_key(cfg: &TransArrayConfig, static_si: Option<&StaticSi>, patterns: &[u16]) -> PlanKey {
    let si_token = match cfg.scoreboard_mode {
        ScoreboardMode::Dynamic => None,
        ScoreboardMode::Static => {
            Some(static_si.expect("static mode requires a prefetched SI").instance_token())
        }
    };
    PlanKey::new(&cfg.scoreboard_config(), si_token, patterns)
}

/// Fetches the sub-tile's memoized plan, or builds and memoizes it. The
/// (potentially expensive) Scoreboard construction runs outside the
/// cache's lock; racing workers may build the same plan twice, which is
/// harmless — the values are identical by construction. `with_plan`
/// additionally materializes the dynamic op streams on a miss (pass it
/// from functional callers so one Scoreboard build serves both
/// products); simulation-only callers leave them lazy.
fn lookup_or_build_plan(
    cfg: &TransArrayConfig,
    static_si: Option<&StaticSi>,
    patterns: &[u16],
    cache: &SharedPlanCache,
    with_plan: bool,
) -> Arc<CachedPlan> {
    let key = plan_key(cfg, static_si, patterns);
    if let Some(hit) = cache.get(&key) {
        return hit;
    }
    let plan = match cfg.scoreboard_mode {
        ScoreboardMode::Dynamic => {
            CachedPlan::build_dynamic(&cfg.scoreboard_config(), patterns, with_plan)
        }
        ScoreboardMode::Static => {
            let si = static_si.expect("static mode requires a prefetched SI");
            CachedPlan::Static { report: si.evaluate_tile(patterns) }
        }
    };
    let plan = Arc::new(plan);
    cache.insert(key, Arc::clone(&plan));
    plan
}

/// Assembles a [`SubtileReport`] from a (cached or fresh) plan.
fn report_from_plan(cfg: &TransArrayConfig, patterns: &[u16], plan: &CachedPlan) -> SubtileReport {
    match plan {
        CachedPlan::Dynamic { stats, .. } => dynamic_report(cfg, patterns, Arc::clone(stats)),
        CachedPlan::Static { report } => static_report(cfg, patterns, report),
    }
}

/// [`process_subtile`] through the optional shared plan cache: with
/// `cache = None` this is exactly the uncached path; with a cache, the
/// report is bit-identical but the Scoreboard passes are skipped on a
/// hit.
pub(crate) fn process_subtile_cached(
    cfg: &TransArrayConfig,
    static_si: Option<&StaticSi>,
    patterns: &[u16],
    cache: Option<&SharedPlanCache>,
) -> SubtileReport {
    match cache {
        None => process_subtile(cfg, static_si, patterns),
        Some(cache) => report_from_plan(
            cfg,
            patterns,
            &lookup_or_build_plan(cfg, static_si, patterns, cache, false),
        ),
    }
}

/// Processes **and** functionally evaluates one sub-tile in a single
/// pass — `execute_gemm`'s inner loop. One Scoreboard build (or, when a
/// cache is provided, one plan lookup) serves both the performance
/// report and the node results, and every add lands directly in
/// `scratch`'s pattern-result slab: callers read
/// [`ExecScratch::result`] per row (the fused replacement for the old
/// per-row expansion), so the steady state of this function allocates
/// nothing beyond what the plan lookup itself needs. Each computed
/// pattern is additionally emitted into `sink` as its slab slice is
/// finalized (pass [`NullSink`] when nothing streams — the common case).
pub(crate) fn process_and_evaluate_subtile_into(
    cfg: &TransArrayConfig,
    static_si: Option<&StaticSi>,
    patterns: &[u16],
    inputs: TileView<'_>,
    cache: Option<&SharedPlanCache>,
    scratch: &mut ExecScratch,
    sink: &mut dyn ResultSink,
) -> SubtileReport {
    if let Some(cache) = cache {
        let plan = lookup_or_build_plan(cfg, static_si, patterns, cache, true);
        let report = report_from_plan(cfg, patterns, &plan);
        match &*plan {
            CachedPlan::Dynamic { .. } => plan
                .dynamic_plan(&cfg.scoreboard_config(), patterns)
                .evaluate_into(inputs, scratch, sink),
            CachedPlan::Static { .. } => static_si
                .expect("static mode requires a prefetched SI")
                .evaluate_tile_functional_into(patterns, inputs, scratch, sink),
        }
        return report;
    }
    match cfg.scoreboard_mode {
        ScoreboardMode::Dynamic => {
            let (sb, report) = process_dynamic(cfg, patterns);
            ExecutionPlan::from_scoreboard(&sb).evaluate_into(inputs, scratch, sink);
            report
        }
        ScoreboardMode::Static => {
            let si = static_si.expect("static mode requires a prefetched SI");
            si.evaluate_tile_functional_into(patterns, inputs, scratch, sink);
            process_static(cfg, si, patterns)
        }
    }
}

/// Expands per-pattern results into per-row results (zero rows yield zero
/// vectors; duplicate rows share the computed vector). Compatibility path
/// behind [`evaluate_subtile`]'s nested-`Vec` interface — the fused engine
/// ([`evaluate_subtile_into`]) needs no expansion at all. Indexes the
/// computed set via a sorted `O(|computed| log |computed|)` table rather
/// than a dense `2^T` lookup, and clones one shared zero template per
/// zero row instead of rebuilding it.
fn expand_rows(patterns: &[u16], computed: &[(u16, Vec<i64>)], m: usize) -> Vec<Vec<i64>> {
    let mut index: Vec<(u16, usize)> =
        computed.iter().enumerate().map(|(i, (p, _))| (*p, i)).collect();
    index.sort_unstable_by_key(|&(p, _)| p);
    let zero = vec![0i64; m];
    patterns
        .iter()
        .map(|&p| {
            if p == 0 {
                zero.clone()
            } else {
                let at =
                    index.binary_search_by_key(&p, |&(q, _)| q).expect("pattern must be computed");
                computed[index[at].1].1.clone()
            }
        })
        .collect()
}

/// Crossbar throughput bound for the APE→output-bank writes (§4.4): rows
/// are banked by their original row index; the crossbar's conflict queue
/// plus the double buffer *conceal* transient collisions ("we implement a
/// double buffer mechanism so that the partial sum buffer overlaps and
/// conceals the overhead"), so the sustained limit is the most-loaded
/// bank's total row count over the sub-tile — not per-group worst cases.
fn xbar_conflict_cycles(cfg: &TransArrayConfig, patterns: &[u16]) -> u64 {
    let banks = cfg.width as usize;
    let mut occupancy = vec![0u64; banks];
    for (i, &p) in patterns.iter().enumerate() {
        if p != 0 {
            occupancy[i % banks] += 1;
        }
    }
    occupancy.into_iter().max().unwrap_or(0)
}

/// Per-group crossbar conflict statistics (energy/introspection): cycles
/// the un-smoothed dispatch would need, using the Hamming-sorted order.
pub fn xbar_group_conflicts(cfg: &TransArrayConfig, patterns: &[u16]) -> u64 {
    let t = cfg.width as usize;
    let mut xbar = Crossbar::new(cfg.width);
    let mut order: Vec<(u32, usize)> =
        patterns.iter().enumerate().map(|(i, &p)| (p.count_ones(), i)).collect();
    order.sort_unstable();
    let mut conflict = 0u64;
    // One rows buffer reused across every dispatch group — the chunk loop
    // itself allocates nothing.
    let mut rows: Vec<u64> = Vec::with_capacity(t);
    for group in order.chunks(t) {
        rows.clear();
        rows.extend(group.iter().filter(|(pc, _)| *pc > 0).map(|&(_, i)| i as u64));
        if rows.is_empty() {
            continue;
        }
        conflict += xbar.dispatch_rows(&rows);
    }
    conflict
}

/// Functional evaluation of one sub-tile: returns, for every binary row
/// of the tile, its accumulated result vector (length `m`), honoring the
/// configured Scoreboard mode. Zero rows yield zero vectors.
///
/// `inputs[j]` is the input-matrix row for TransRow bit `j` (length `m`).
///
/// # Panics
///
/// Panics if input arity disagrees with the width, or static mode lacks
/// an SI.
pub fn evaluate_subtile(
    cfg: &TransArrayConfig,
    static_si: Option<&StaticSi>,
    patterns: &[u16],
    inputs: &[Vec<i64>],
) -> Vec<Vec<i64>> {
    let computed: Vec<(u16, Vec<i64>)> = match cfg.scoreboard_mode {
        ScoreboardMode::Dynamic => {
            let (sb, _) = process_dynamic(cfg, patterns);
            ExecutionPlan::from_scoreboard(&sb).evaluate(inputs)
        }
        ScoreboardMode::Static => {
            let si = static_si.expect("static mode requires a prefetched SI");
            si.evaluate_tile_functional(patterns, inputs)
        }
    };
    expand_rows(patterns, &computed, inputs.first().map_or(0, Vec::len))
}

/// Flat-buffer counterpart of [`evaluate_subtile`]: evaluates the
/// sub-tile directly into `scratch`'s pattern-result slab. Row `r`'s
/// result is `scratch.result(patterns[r])` afterwards (zero rows have no
/// slab entry — their result is all zeros by definition). Reusing one
/// scratch across many sub-tiles allocates nothing once the arena is
/// warm; results are bit-identical to the oracle path.
///
/// # Panics
///
/// Panics if `inputs.rows()` disagrees with the width, or static mode
/// lacks an SI.
pub fn evaluate_subtile_into(
    cfg: &TransArrayConfig,
    static_si: Option<&StaticSi>,
    patterns: &[u16],
    inputs: TileView<'_>,
    scratch: &mut ExecScratch,
) {
    match cfg.scoreboard_mode {
        ScoreboardMode::Dynamic => {
            let sb = Scoreboard::build(cfg.scoreboard_config(), patterns.iter().copied());
            ExecutionPlan::from_scoreboard(&sb).evaluate_into(inputs, scratch, &mut NullSink);
        }
        ScoreboardMode::Static => {
            let si = static_si.expect("static mode requires a prefetched SI");
            si.evaluate_tile_functional_into(patterns, inputs, scratch, &mut NullSink);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ta_hasse::ScoreboardConfig;

    fn cfg() -> TransArrayConfig {
        TransArrayConfig { width: 4, max_transrows: 8, weight_bits: 4, ..Default::default() }
    }

    #[test]
    fn dynamic_report_consistent() {
        let c = cfg();
        let patterns = [0b1011u16, 0b1111, 0b0011, 0b0010];
        let (_, rep) = process_dynamic(&c, &patterns);
        assert_eq!(rep.rows, 4);
        assert_eq!(rep.total_ops, 4);
        assert_eq!(rep.dense_bit_ops, 16);
        assert!(rep.cycles >= rep.ppe_cycles);
        assert!(rep.cycles >= rep.scoreboard_cycles);
        assert_eq!(rep.si_misses, 0);
        assert!(rep.stats.is_some());
    }

    #[test]
    fn static_report_has_no_scoreboard_stage() {
        let c = TransArrayConfig { scoreboard_mode: ScoreboardMode::Static, ..cfg() };
        let patterns = vec![0b1011u16, 0b1111, 0b0011, 0b0010];
        let si = StaticSi::from_patterns(ScoreboardConfig::with_width(4), patterns.iter().copied());
        let rep = process_static(&c, &si, &patterns);
        assert_eq!(rep.scoreboard_cycles, 0);
        assert_eq!(rep.total_ops, 4);
        assert!(rep.stats.is_none());
    }

    #[test]
    fn dynamic_functional_matches_subset_sums() {
        let c = cfg();
        let patterns = [0b1011u16, 0b1111, 0b0011, 0b0010, 0];
        let inputs: Vec<Vec<i64>> = vec![vec![6, 1], vec![-2, 2], vec![-5, 3], vec![4, 4]];
        let rows = evaluate_subtile(&c, None, &patterns, &inputs);
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0], vec![6 - 2 + 4, 1 + 2 + 4]);
        assert_eq!(rows[1], vec![6 - 2 - 5 + 4, 1 + 2 + 3 + 4]);
        assert_eq!(rows[2], vec![6 - 2, 1 + 2]);
        assert_eq!(rows[3], vec![-2, 2]);
        assert_eq!(rows[4], vec![0, 0]);
    }

    #[test]
    fn static_functional_matches_dynamic() {
        let dyn_cfg = cfg();
        let sta_cfg = TransArrayConfig { scoreboard_mode: ScoreboardMode::Static, ..cfg() };
        let patterns = [0b0111u16, 0b0101, 0b1111, 0b0001, 0b0101];
        let si = StaticSi::from_patterns(ScoreboardConfig::with_width(4), patterns.iter().copied());
        let inputs: Vec<Vec<i64>> = (0..4).map(|j| vec![j as i64 * 3 - 4]).collect();
        let d = evaluate_subtile(&dyn_cfg, None, &patterns, &inputs);
        let s = evaluate_subtile(&sta_cfg, Some(&si), &patterns, &inputs);
        assert_eq!(d, s);
    }

    #[test]
    fn static_functional_handles_unknown_patterns() {
        // Tile contains a pattern the calibration never saw.
        let sta_cfg = TransArrayConfig { scoreboard_mode: ScoreboardMode::Static, ..cfg() };
        let si = StaticSi::from_patterns(ScoreboardConfig::with_width(4), [0b0001u16]);
        let patterns = [0b1010u16];
        let inputs: Vec<Vec<i64>> = (0..4).map(|j| vec![1i64 << j]).collect();
        let rows = evaluate_subtile(&sta_cfg, Some(&si), &patterns, &inputs);
        assert_eq!(rows[0], vec![0b1010]);
    }

    #[test]
    fn cached_process_equals_uncached_in_both_modes() {
        let dyn_cfg = cfg();
        let sta_cfg = TransArrayConfig { scoreboard_mode: ScoreboardMode::Static, ..cfg() };
        let patterns = [0b1011u16, 0b1111, 0b0011, 0b0010, 0, 0b0011];
        let si = StaticSi::from_patterns(ScoreboardConfig::with_width(4), patterns.iter().copied());
        let cache = SharedPlanCache::new(8);
        for (c, si_opt) in [(&dyn_cfg, None), (&sta_cfg, Some(&si))] {
            let fresh = process_subtile(c, si_opt, &patterns);
            let miss = process_subtile_cached(c, si_opt, &patterns, Some(&cache));
            let hit = process_subtile_cached(c, si_opt, &patterns, Some(&cache));
            assert_eq!(fresh, miss, "miss path must equal uncached");
            assert_eq!(fresh, hit, "hit path must equal uncached");
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (2, 2));
    }

    #[test]
    fn cached_report_recomputes_positional_xbar_bound() {
        // Same multiset, different row order → same key, same plan, but
        // the bank-occupancy bound must follow the actual positions.
        let c = cfg();
        let cache = SharedPlanCache::new(4);
        let a = [1u16, 1, 0, 0, 0, 0, 0, 0];
        let b = [1u16, 0, 0, 0, 1, 0, 0, 0];
        let ra = process_subtile_cached(&c, None, &a, Some(&cache));
        let rb = process_subtile_cached(&c, None, &b, Some(&cache));
        assert_eq!(cache.stats().hits, 1, "permuted tile must hit");
        assert_eq!(ra.total_ops, rb.total_ops);
        assert_eq!(ra.xbar_cycles, 1, "rows 0,1 land in different banks");
        assert_eq!(rb.xbar_cycles, 2, "rows 0,4 collide in bank 0");
    }

    /// Asserts the scratch holds exactly `want_rows` for `patterns` (zero
    /// rows expect all-zero results and have no slab entry).
    fn assert_scratch_rows(scratch: &ExecScratch, patterns: &[u16], want_rows: &[Vec<i64>]) {
        assert_eq!(patterns.len(), want_rows.len());
        for (r, (&p, want)) in patterns.iter().zip(want_rows).enumerate() {
            if p == 0 {
                assert!(want.iter().all(|&v| v == 0), "row {r}");
            } else {
                assert_eq!(scratch.result(p), Some(want.as_slice()), "row {r}");
            }
        }
    }

    #[test]
    fn fused_process_and_evaluate_matches_split_calls() {
        let dyn_cfg = cfg();
        let sta_cfg = TransArrayConfig { scoreboard_mode: ScoreboardMode::Static, ..cfg() };
        let patterns = [0b0111u16, 0b0101, 0b1111, 0, 0b0101];
        let si = StaticSi::from_patterns(ScoreboardConfig::with_width(4), patterns.iter().copied());
        let inputs: Vec<Vec<i64>> = (0..4).map(|j| vec![j as i64 * 5 - 7, j as i64]).collect();
        let staged: Vec<i64> = inputs.iter().flat_map(|r| r.iter().copied()).collect();
        let view = TileView::new(&staged, 4, 2, 2);
        // One dirty scratch shared across every mode/cache combination —
        // reuse must never leak a previous sub-tile's results.
        let mut scratch = ExecScratch::new();
        for (c, si_opt) in [(&dyn_cfg, None), (&sta_cfg, Some(&si))] {
            let want_rep = process_subtile(c, si_opt, &patterns);
            let want_rows = evaluate_subtile(c, si_opt, &patterns, &inputs);
            for cache in [None, Some(SharedPlanCache::new(4))] {
                let rep = process_and_evaluate_subtile_into(
                    c,
                    si_opt,
                    &patterns,
                    view,
                    cache.as_ref(),
                    &mut scratch,
                    &mut NullSink,
                );
                assert_eq!(rep, want_rep);
                assert_scratch_rows(&scratch, &patterns, &want_rows);
                if let Some(cache) = &cache {
                    // Warm lookup must also agree.
                    let rep2 = process_and_evaluate_subtile_into(
                        c,
                        si_opt,
                        &patterns,
                        view,
                        Some(cache),
                        &mut scratch,
                        &mut NullSink,
                    );
                    assert_eq!(rep2, want_rep);
                    assert_scratch_rows(&scratch, &patterns, &want_rows);
                    assert!(cache.stats().hits >= 1);
                }
            }
        }
    }

    #[test]
    fn evaluate_subtile_into_matches_oracle() {
        let dyn_cfg = cfg();
        let sta_cfg = TransArrayConfig { scoreboard_mode: ScoreboardMode::Static, ..cfg() };
        let patterns = [0b1011u16, 0b1111, 0, 0b0011, 0b0010, 0b1011];
        let si = StaticSi::from_patterns(ScoreboardConfig::with_width(4), patterns.iter().copied());
        let inputs: Vec<Vec<i64>> =
            (0..4).map(|j| vec![6 - j as i64 * 3, j as i64 * j as i64]).collect();
        let staged: Vec<i64> = inputs.iter().flat_map(|r| r.iter().copied()).collect();
        let view = TileView::new(&staged, 4, 2, 2);
        let mut scratch = ExecScratch::new();
        for (c, si_opt) in [(&dyn_cfg, None), (&sta_cfg, Some(&si))] {
            let want_rows = evaluate_subtile(c, si_opt, &patterns, &inputs);
            evaluate_subtile_into(c, si_opt, &patterns, view, &mut scratch);
            assert_scratch_rows(&scratch, &patterns, &want_rows);
        }
    }

    #[test]
    fn xbar_sustained_limit_is_worst_bank() {
        let c = cfg();
        // 8 non-zero rows over 4 banks → 2 per bank → 2 cycles sustained.
        let patterns = [1u16, 1, 1, 1, 1, 1, 1, 1];
        let (_, rep) = process_dynamic(&c, &patterns);
        assert_eq!(rep.xbar_cycles, 2);
        // Zero rows don't occupy banks.
        let (_, rep0) = process_dynamic(&c, &[0u16, 0, 0, 0, 7, 0, 0, 0]);
        assert_eq!(rep0.xbar_cycles, 1);
    }

    #[test]
    fn xbar_group_stats_exceed_sustained_bound() {
        let c = cfg();
        let patterns: Vec<u16> =
            (0..64u32).map(|i| ((i.wrapping_mul(2654435761)) >> 16) as u16 & 0xF).collect();
        let sustained = {
            let (_, rep) = process_dynamic(&c, &patterns);
            rep.xbar_cycles
        };
        let grouped = xbar_group_conflicts(&c, &patterns);
        assert!(grouped >= sustained, "{grouped} vs {sustained}");
    }
}
