//! Pattern sources — where a layer's TransRow patterns come from.
//!
//! Performance simulation of a billion-parameter layer cannot materialize
//! the whole weight matrix; it only ever needs the TransRow multiset of
//! each weight sub-tile. [`PatternSource`] abstracts that: a real
//! bit-sliced matrix ([`SlicedSource`]) for functional runs, or an
//! on-the-fly generator (in `ta-models`) for at-scale runs.

use ta_bitslice::BitSlicedMatrix;

/// Supplies the TransRow patterns of weight sub-tile `(n_tile, k_chunk)`.
///
/// Implementations must be deterministic per index pair so sampling and
/// re-runs agree.
pub trait PatternSource {
    /// TransRow width the patterns are produced at.
    fn width(&self) -> u32;

    /// Patterns of the sub-tile covering weight rows
    /// `[n_tile·n, (n_tile+1)·n)` and reduction columns
    /// `[k_chunk·T, (k_chunk+1)·T)`. Must return exactly
    /// `rows_per_subtile` patterns (zero-padded at the matrix edge).
    fn subtile_patterns(&mut self, n_tile: usize, k_chunk: usize) -> Vec<u16>;

    /// [`Self::subtile_patterns`] into a caller-owned buffer (cleared
    /// first). Hot-loop sources override this to fill `out` without any
    /// allocation once its capacity is warm; the default delegates.
    fn subtile_patterns_into(&mut self, n_tile: usize, k_chunk: usize, out: &mut Vec<u16>) {
        out.clear();
        out.extend(self.subtile_patterns(n_tile, k_chunk));
    }

    /// Binary rows per sub-tile (`S·n`).
    fn rows_per_subtile(&self) -> usize;

    /// Forks an independent handle for one parallel worker. A fork must
    /// produce exactly the same patterns as the original for every index
    /// pair (the determinism contract above makes this natural for
    /// stateless sources). Returning `None` (the default) tells the
    /// runtime the source cannot be shared, and the sharded paths fall
    /// back to the serial loop.
    fn fork(&self) -> Option<Box<dyn PatternSource + Send + '_>> {
        None
    }
}

/// Pattern source backed by an actual bit-sliced weight matrix.
#[derive(Debug, Clone)]
pub struct SlicedSource<'a> {
    sliced: &'a BitSlicedMatrix,
    width: u32,
    n_tile_rows: usize,
}

impl<'a> SlicedSource<'a> {
    /// Wraps a bit-sliced matrix, reading sub-tiles of `n_tile_rows`
    /// weight rows at TransRow width `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `1..=16` or `n_tile_rows` is zero.
    pub fn new(sliced: &'a BitSlicedMatrix, n_tile_rows: usize, width: u32) -> Self {
        assert!((1..=16).contains(&width), "width must be in 1..=16");
        assert!(n_tile_rows > 0, "n_tile_rows must be non-zero");
        Self { sliced, width, n_tile_rows }
    }
}

impl PatternSource for SlicedSource<'_> {
    fn width(&self) -> u32 {
        self.width
    }

    fn subtile_patterns(&mut self, n_tile: usize, k_chunk: usize) -> Vec<u16> {
        // One extraction implementation: the allocating path delegates to
        // the buffer-filling one so the two can never drift.
        let mut out = Vec::with_capacity(self.rows_per_subtile());
        self.subtile_patterns_into(n_tile, k_chunk, &mut out);
        out
    }

    fn subtile_patterns_into(&mut self, n_tile: usize, k_chunk: usize, out: &mut Vec<u16>) {
        let s = self.sliced.bits() as usize;
        ta_bitslice::kernels::extract_subtile_patterns_into(
            self.sliced.planes(),
            n_tile * self.n_tile_rows * s,
            self.n_tile_rows * s,
            k_chunk * self.width as usize,
            self.width,
            out,
        );
    }

    fn rows_per_subtile(&self) -> usize {
        self.n_tile_rows * self.sliced.bits() as usize
    }

    fn fork(&self) -> Option<Box<dyn PatternSource + Send + '_>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ta_bitslice::extract_subtile_transrows;
    use ta_quant::MatI32;

    #[test]
    fn sliced_source_covers_tiles() {
        let w = MatI32::from_fn(4, 16, |r, c| ((r * 16 + c) as i32 % 15) - 7);
        let sliced = BitSlicedMatrix::slice(&w, 4);
        let mut src = SlicedSource::new(&sliced, 2, 8);
        assert_eq!(src.width(), 8);
        assert_eq!(src.rows_per_subtile(), 8);
        let p00 = src.subtile_patterns(0, 0);
        assert_eq!(p00.len(), 8);
        // Deterministic.
        assert_eq!(p00, src.subtile_patterns(0, 0));
        // Different tiles generally differ.
        let p01 = src.subtile_patterns(0, 1);
        assert_ne!(p00, p01);
    }

    #[test]
    fn edge_tiles_zero_padded() {
        let w = MatI32::from_fn(3, 10, |_, _| -1); // all bits set
        let sliced = BitSlicedMatrix::slice(&w, 4);
        let mut src = SlicedSource::new(&sliced, 2, 8);
        // k_chunk 1 covers columns 8..16, of which only 8,9 exist.
        let p = src.subtile_patterns(0, 1);
        assert!(p.iter().all(|&x| x == 0b0000_0011));
        // n_tile 1 covers weight rows 2..4, of which only row 2 exists.
        let p = src.subtile_patterns(1, 0);
        assert!(p[..4].iter().all(|&x| x == 0xFF));
        assert!(p[4..].iter().all(|&x| x == 0));
    }

    #[test]
    fn patterns_into_matches_transrow_extraction() {
        // Pin the buffer-filling extraction (which the allocating path
        // delegates to) against the independent TransRow-based extractor,
        // including zero-padded edge tiles.
        let w = MatI32::from_fn(7, 30, |r, c| ((r * 30 + c) as i32 % 13) - 6);
        let sliced = BitSlicedMatrix::slice(&w, 4);
        let mut src = SlicedSource::new(&sliced, 3, 8);
        let mut buf = Vec::new();
        for nt in 0..3 {
            for kc in 0..4 {
                let want: Vec<u16> = extract_subtile_transrows(&sliced, nt * 3, 3, kc * 8, 8)
                    .iter()
                    .map(|tr| tr.pattern())
                    .collect();
                src.subtile_patterns_into(nt, kc, &mut buf);
                assert_eq!(buf, want, "tile ({nt},{kc})");
                assert_eq!(src.subtile_patterns(nt, kc), want, "allocating path ({nt},{kc})");
            }
        }
    }

    #[test]
    fn sliced_source_fork_agrees_with_original() {
        let w = MatI32::from_fn(6, 20, |r, c| ((r * 20 + c) as i32 % 13) - 6);
        let sliced = BitSlicedMatrix::slice(&w, 4);
        let mut src = SlicedSource::new(&sliced, 2, 8);
        let expected: Vec<Vec<u16>> = (0..9).map(|i| src.subtile_patterns(i / 3, i % 3)).collect();
        let mut forked = src.fork().expect("sliced source must fork");
        assert_eq!(forked.width(), 8);
        assert_eq!(forked.rows_per_subtile(), 8);
        for (i, want) in expected.iter().enumerate() {
            assert_eq!(&forked.subtile_patterns(i / 3, i % 3), want);
        }
    }
}
