//! Offline stand-in for the crates.io `proptest` property-testing framework.
//!
//! The workspace must build without network access, so the real framework
//! cannot be a dependency. This crate implements the subset of the proptest
//! API used by the workspace's `mod proptests` blocks: strategies are drawn
//! from a deterministic per-test RNG (seeded from the test's name), the body
//! runs once per generated case, and `prop_assert*` map onto the standard
//! assertion macros. There is no shrinking and no failure persistence — a
//! failing case prints its assertion message and the test's deterministic
//! seed makes the failure reproducible. See this crate's `README.md` for the
//! swap-back-to-real-proptest procedure.

pub mod strategy;

pub mod test_runner;

/// Strategies over `bool`.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding uniformly random booleans, mirroring
    /// `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    /// The type of [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length, mirroring
    /// `proptest::collection::SizeRange`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange { lo: r.start, hi: r.end.saturating_sub(1) }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy producing a `Vec` whose elements come from `element` and
    /// whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.hi.saturating_sub(self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Map of `proptest!`: expands each contained `#[test] fn name(pat in
/// strategy, ..) { body }` into a standard `#[test]` that draws
/// `Config::cases` inputs from the strategies and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_tests {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($p:pat in $s:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                // Counts cases that ran to completion. `prop_assume!` expands
                // to `continue`, skipping the increment: unlike real proptest
                // the rejected case is consumed rather than regenerated, so a
                // too-restrictive assumption could silently make the whole
                // test vacuous — the final assert below catches that.
                let mut completed = 0u32;
                for _case in 0..config.cases {
                    $(
                        let $p = $crate::strategy::Strategy::generate(&($s), &mut rng);
                    )+
                    $body
                    completed += 1;
                }
                assert!(
                    completed > 0,
                    "proptest stand-in: all {} generated cases were rejected by prop_assume! — \
                     the property was never exercised",
                    config.cases
                );
            }
        )*
    };
}

/// Map of `prop_assert!`: plain `assert!` (no shrinking in the stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Map of `prop_assert_eq!`: plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Map of `prop_assert_ne!`: plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Map of `prop_assume!`: skip the current generated case when the
/// assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            continue;
        }
    };
}

/// Map of `prop_oneof!`: pick one of the given strategies uniformly at
/// random for each generated case.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($s) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro wires bindings, strategies, and assertions together.
        #[test]
        fn macro_generates_working_tests(a in 0i32..10, b in 0i32..10) {
            prop_assert!((0..10).contains(&a));
            prop_assert_eq!(a + b, b + a);
        }

        /// A viable assumption consumes some cases but the test still runs.
        #[test]
        fn assume_skips_without_vacuity(v in crate::collection::vec(0u32..4, 0..6)) {
            prop_assume!(!v.is_empty());
            prop_assert!(v.len() < 6);
        }

        /// An assumption that rejects every case must fail the test rather
        /// than pass vacuously.
        #[test]
        #[should_panic(expected = "rejected by prop_assume!")]
        fn assume_all_rejected_panics(x in 0i32..10) {
            prop_assume!(x > 100);
            prop_assert!(x > 100);
        }
    }
}
