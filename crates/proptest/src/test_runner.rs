//! Test configuration and the deterministic RNG behind the stand-in.

/// Per-`proptest!` configuration, mirroring
/// `proptest::test_runner::Config` (exposed in the prelude as
/// `ProptestConfig`).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of random cases to generate per test.
    pub cases: u32,
}

impl Config {
    /// A config running exactly `cases` cases (not subject to the
    /// `PROPTEST_CASES` env override, matching real proptest's precedence
    /// where the env var only feeds the default).
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // The real proptest defaults to 256 and reads PROPTEST_CASES into the
        // default, with explicit with_cases() taking precedence; mirror that.
        // Absent the env var, the stand-in halves 256 to keep the workspace's
        // simulator-heavy property tests CI-friendly.
        let cases =
            std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(128);
        Config { cases }
    }
}

/// Deterministic RNG (SplitMix64). Each test seeds it from its own name, so
/// runs are reproducible without any persistence files.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test name.
    pub fn for_test(name: &str) -> Self {
        let mut seed = 0x9E37_79B9_7F4A_7C15u64;
        for b in name.bytes() {
            seed = seed.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64);
        }
        TestRng { state: seed }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_test("x");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_test("x");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = TestRng::for_test("y");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = TestRng::for_test("f64");
        for _ in 0..100 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
