//! The [`Strategy`] trait and the adapters/primitive strategies the
//! workspace's property tests use.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of random values, mirroring `proptest::strategy::Strategy`.
///
/// The stand-in keeps only generation — there is no shrinking `ValueTree`
/// layer, so `Value` is produced directly.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draw one value from this strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feed every generated value into `f` to obtain a second-stage
    /// strategy, then draw from that.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Randomly permute each generated `Vec`.
    fn prop_shuffle<T>(self) -> Shuffle<Self>
    where
        Self: Sized + Strategy<Value = Vec<T>>,
    {
        Shuffle { inner: self }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Strategy that always yields a clone of one value, mirroring
/// `proptest::strategy::Just`.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The adapter returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The adapter returned by [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// The adapter returned by [`Strategy::prop_shuffle`].
#[derive(Clone, Debug)]
pub struct Shuffle<S> {
    inner: S,
}

impl<S, T> Strategy for Shuffle<S>
where
    S: Strategy<Value = Vec<T>>,
{
    type Value = Vec<T>;
    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let mut v = self.inner.generate(rng);
        // Fisher–Yates.
        for i in (1..v.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            v.swap(i, j);
        }
        v
    }
}

/// A type-erased strategy, mirroring `proptest::strategy::BoxedStrategy`.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice between several boxed strategies; the expansion of
/// [`crate::prop_oneof!`].
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build a union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range strategy");
                (lo + (rng.next_u64() as i128).rem_euclid(hi - lo)) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "empty range strategy");
                (lo + (rng.next_u64() as i128).rem_euclid(hi - lo + 1)) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        // Float rounding in the affine map can land exactly on the exclusive
        // end bound (e.g. a u01 value within 2^-25 of 1 rounds to 1.0f32);
        // fall back to start to preserve the half-open contract.
        let v = self.start + rng.next_f64() as f32 * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges_stay_in_bounds");
        for _ in 0..200 {
            let v = (-5i32..7).generate(&mut rng);
            assert!((-5..7).contains(&v));
            let w = (0u64..3).generate(&mut rng);
            assert!(w < 3);
            let x = (-2i64..=2).generate(&mut rng);
            assert!((-2..=2).contains(&x));
            let f = (-1.0f32..1.0).generate(&mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = TestRng::for_test("shuffle_is_a_permutation");
        let s = Just((0..16).collect::<Vec<usize>>()).prop_shuffle();
        let mut v = s.generate(&mut rng);
        v.sort_unstable();
        assert_eq!(v, (0..16).collect::<Vec<usize>>());
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::for_test("map_and_flat_map_compose");
        let s = (1usize..4, 1usize..4).prop_flat_map(|(r, c)| {
            crate::collection::vec(0i32..10, r * c).prop_map(move |v| (r, c, v))
        });
        let (r, c, v) = s.generate(&mut rng);
        assert_eq!(v.len(), r * c);
    }

    #[test]
    fn union_picks_only_options() {
        let mut rng = TestRng::for_test("union_picks_only_options");
        let u = Union::new(vec![Just(4u32).boxed(), Just(8u32).boxed()]);
        for _ in 0..50 {
            let v = u.generate(&mut rng);
            assert!(v == 4 || v == 8);
        }
    }
}
