//! # ta-bitslice — bit-slicing engine for the Transitive Array
//!
//! Implements the bit-level substrate of the paper (Fig. 2, Fig. 3):
//!
//! * [`BinaryMatrix`] — packed 0/1 matrices;
//! * [`BitSlicedMatrix`] — `S`-bit 2's-complement matrices decomposed into
//!   an `(S·N × K)` binary matrix, with exact reconstruction;
//! * [`TransRow`] — the `T`-bit row patterns transitive sparsity operates
//!   on, plus sub-tile extraction;
//! * [`RowMajor`] / [`RowsMut`] / [`TileView`] — flat, contiguous
//!   row-major buffers and views, the zero-copy substrate of the
//!   functional execution engine;
//! * [`kernels`] — the word-parallel kernel facade every bit-sliced hot
//!   loop routes through (extraction, slicing, slab row-adds, im2col);
//! * Hamming-order / prefix / suffix utilities the Scoreboard traversals
//!   use ([`hamming_order`], [`prefixes`], [`suffixes`]);
//! * a bitonic sorting network with a hardware cost report
//!   ([`bitonic_sort_by_key`]);
//! * im2col convolution lowering for the ResNet-18 experiment
//!   ([`im2col`], [`conv_im2col`]).
//!
//! ## Quick example
//!
//! ```
//! use ta_bitslice::{extract_subtile_transrows, BitSlicedMatrix};
//! use ta_quant::MatI32;
//!
//! let w = MatI32::from_rows(&[&[6, -5, -2, 4]]);
//! let sliced = BitSlicedMatrix::slice(&w, 4);
//! assert_eq!(sliced.reconstruct(), w);       // losslessness
//! let trs = extract_subtile_transrows(&sliced, 0, 1, 0, 4);
//! assert_eq!(trs.len(), 4);                  // 4 bit levels of 1 row
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod binmat;
mod im2col;
pub mod kernels;
mod popcount;
mod rowmajor;
mod slicer;
mod sorter;
mod transrow;

pub use binmat::BinaryMatrix;
pub use im2col::{conv_direct, conv_im2col, flatten_weights, im2col, ConvShape};
pub use popcount::{binomial, hamming_order, level, prefixes, suffixes};
pub use rowmajor::{RowMajor, RowsMut, TileView};
pub use slicer::BitSlicedMatrix;
pub use sorter::{bitonic_depth, bitonic_sort_by_key, SortReport};
#[allow(deprecated)]
pub use transrow::extract_subtile_patterns_into;
pub use transrow::{extract_subtile_transrows, extract_transrows, TransRow};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use ta_quant::MatI32;

    fn int_matrix(bits: u32, max_dim: usize) -> impl Strategy<Value = MatI32> {
        let hi = (1i32 << (bits - 1)) - 1;
        let lo = -(1i32 << (bits - 1));
        (1..=max_dim, 1..=max_dim).prop_flat_map(move |(r, c)| {
            proptest::collection::vec(lo..=hi, r * c).prop_map(move |v| MatI32::from_vec(r, c, v))
        })
    }

    proptest! {
        /// Bit-slicing roundtrips exactly for arbitrary bit widths.
        #[test]
        fn slice_reconstruct_roundtrip(
            bits in 2u32..=12,
            rows in 1usize..6,
            cols in 1usize..6,
            seed in 0i64..1000
        ) {
            let hi = (1i64 << (bits - 1)) - 1;
            let lo = -(1i64 << (bits - 1));
            let m = MatI32::from_fn(rows, cols, |r, c| {
                let x = (r as i64 * 2654435761 + c as i64 * 40503 + seed * 97) % (hi - lo + 1);
                (x + lo + (hi - lo + 1)) as i32 % (hi - lo + 1) as i32 + lo as i32
            });
            prop_assume!(m.fits_signed_bits(bits));
            let s = BitSlicedMatrix::slice(&m, bits);
            prop_assert_eq!(s.reconstruct(), m);
        }

        /// Reconstruction is exact for arbitrary 8-bit matrices drawn by
        /// proptest directly.
        #[test]
        fn slice_reconstruct_roundtrip_8bit(m in int_matrix(8, 10)) {
            let s = BitSlicedMatrix::slice(&m, 8);
            prop_assert_eq!(s.reconstruct(), m);
        }

        /// The sum of signed level weights of the set bits equals the value.
        #[test]
        fn row_weights_sum_to_value(v in -128i32..=127) {
            let m = MatI32::from_rows(&[&[v]]);
            let s = BitSlicedMatrix::slice(&m, 8);
            let mut acc: i64 = 0;
            for br in 0..8 {
                if s.planes().get(br, 0) {
                    acc += s.row_weight(br);
                }
            }
            prop_assert_eq!(acc, v as i64);
        }

        /// Bitonic sort always sorts, for arbitrary lengths and data.
        #[test]
        fn bitonic_always_sorts(mut v in proptest::collection::vec(0u32..1000, 0..70)) {
            bitonic_sort_by_key(&mut v, |&x| x);
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }

        /// Bitonic sort is a permutation (multiset preserved).
        #[test]
        fn bitonic_preserves_multiset(v in proptest::collection::vec(0u32..50, 0..40)) {
            let mut sorted = v.clone();
            bitonic_sort_by_key(&mut sorted, |&x| x);
            let mut expected = v;
            expected.sort_unstable();
            prop_assert_eq!(sorted, expected);
        }

        /// Extracted TransRow patterns reproduce the binary matrix content.
        #[test]
        fn transrow_extraction_consistent(m in int_matrix(4, 6), width in 1u32..=8) {
            let s = BitSlicedMatrix::slice(&m, 4);
            let trs = extract_transrows(s.planes(), 0, s.binary_rows(), 0, width);
            for tr in &trs {
                for j in 0..width {
                    let c = j as usize;
                    let expected = c < s.cols()
                        && s.planes().get(tr.row_index() as usize, c);
                    prop_assert_eq!(tr.pattern() & (1 << j) != 0, expected);
                }
            }
        }

        /// im2col convolution equals direct convolution on random shapes.
        #[test]
        fn im2col_matches_direct(
            in_c in 1usize..3, out_c in 1usize..3,
            kh in 1usize..4, kw in 1usize..4,
            stride in 1usize..3, pad in 0usize..2,
            seed in 0i32..100
        ) {
            let in_h = kh + 3;
            let in_w = kw + 2;
            let shape = ConvShape { in_c, out_c, kh, kw, stride, pad, in_h, in_w };
            let w = MatI32::from_fn(out_c, in_c * kh * kw,
                |r, c| ((r as i32 * 7 + c as i32 * 3 + seed) % 11) - 5);
            let x = MatI32::from_fn(in_c, in_h * in_w,
                |r, c| ((r as i32 * 5 + c as i32 * 13 + seed) % 11) - 5);
            prop_assert_eq!(conv_im2col(&shape, &w, &x), conv_direct(&shape, &w, &x));
        }
    }
}
