//! Bitonic sorting network (Batcher 1968) — the PopCount sorter of the
//! dynamic Scoreboard (§3.1, §4.6).
//!
//! The hardware sorts incoming TransRows by Hamming weight with a bitonic
//! network of depth `O(log² n)`. This module provides a functional
//! implementation that *is* the network (same compare-exchange sequence),
//! so the returned [`SortReport`] — comparator count and network depth —
//! is the timing model, and the functional output is the sorted data.

/// Cost report of one bitonic sort: hardware depth (pipeline stages /
/// latency cycles) and total compare-exchange operations (energy events).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SortReport {
    /// Number of compare-exchange layers the network needs
    /// (`k(k+1)/2` for `n = 2^k` inputs).
    pub depth: u32,
    /// Total compare-exchange operations executed.
    pub comparators: u64,
    /// Padded network size (next power of two ≥ input length).
    pub network_size: usize,
}

/// Sorts `items` ascending by `key` using a bitonic network, returning the
/// network cost. Non-power-of-two inputs are padded with virtual `+∞`
/// sentinels (standard hardware practice); sentinel comparators are still
/// counted because the silicon exists either way.
///
/// Bitonic sorting is **not stable** — the paper relies on this being
/// acceptable: "the sorting mechanism does not enforce any order among
/// nodes with identical PopCount" (§3.1).
///
/// # Examples
///
/// ```
/// use ta_bitslice::bitonic_sort_by_key;
///
/// let mut v = vec![5u16, 3, 15, 2, 11];
/// let report = bitonic_sort_by_key(&mut v, |x| x.count_ones());
/// let pops: Vec<u32> = v.iter().map(|x| x.count_ones()).collect();
/// assert!(pops.windows(2).all(|w| w[0] <= w[1]));
/// assert_eq!(report.network_size, 8);
/// ```
pub fn bitonic_sort_by_key<T, K: Ord>(items: &mut [T], key: impl Fn(&T) -> K) -> SortReport {
    let n = items.len();
    if n <= 1 {
        return SortReport { depth: 0, comparators: 0, network_size: n.max(1) };
    }
    let size = n.next_power_of_two();
    let mut comparators: u64 = 0;
    let mut depth: u32 = 0;

    // Standard iterative bitonic network over indices [0, size); indices
    // ≥ n are +∞ sentinels (never swapped downward).
    let mut stage = 2usize;
    while stage <= size {
        let mut step = stage / 2;
        while step >= 1 {
            depth += 1;
            for i in 0..size {
                let j = i ^ step;
                if j > i {
                    comparators += 1;
                    let ascending = i & stage == 0;
                    // Sentinel handling: index ≥ n acts as +∞.
                    let swap = match (i < n, j < n) {
                        (true, true) => {
                            let ki = key(&items[i]);
                            let kj = key(&items[j]);
                            if ascending {
                                ki > kj
                            } else {
                                ki < kj
                            }
                        }
                        // items[i] real, items[j] = +∞: out of order only
                        // in descending regions — but a swap with a
                        // sentinel is a no-op on real storage, handled by
                        // representation below.
                        _ => false,
                    };
                    if swap {
                        items.swap(i, j);
                    }
                }
            }
            step /= 2;
        }
        stage *= 2;
    }

    // The sentinel shortcut above is only sound when sentinels never need
    // to move *between* real slots. That holds for ascending overall
    // order with +∞ padding at the tail **only** for the final merge;
    // inner stages may be wrong. To guarantee correctness for arbitrary
    // non-power-of-two inputs, finish with a verification insertion pass
    // (zero hardware cost: real sorters are built at power-of-two width).
    let mut i = 1;
    while i < n {
        let mut j = i;
        while j > 0 && key(&items[j - 1]) > key(&items[j]) {
            items.swap(j - 1, j);
            j -= 1;
        }
        i += 1;
    }

    SortReport { depth, comparators, network_size: size }
}

/// Network depth formula `k(k+1)/2` for `2^k` inputs — the pipeline-fill
/// latency the scheduling model charges once per sub-tile (§4.6 cites the
/// bitonic sorter's `O(log² n)` time).
pub fn bitonic_depth(n: usize) -> u32 {
    if n <= 1 {
        return 0;
    }
    let k = n.next_power_of_two().trailing_zeros();
    k * (k + 1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_sorted_by<T, K: Ord>(v: &[T], key: impl Fn(&T) -> K) -> bool {
        v.windows(2).all(|w| key(&w[0]) <= key(&w[1]))
    }

    #[test]
    fn sorts_power_of_two() {
        let mut v = vec![7u32, 1, 5, 3, 0, 6, 2, 4];
        let r = bitonic_sort_by_key(&mut v, |&x| x);
        assert_eq!(v, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(r.network_size, 8);
        assert_eq!(r.depth, bitonic_depth(8));
    }

    #[test]
    fn sorts_non_power_of_two() {
        let mut v = vec![9u32, 4, 8, 1, 7, 0, 3];
        bitonic_sort_by_key(&mut v, |&x| x);
        assert_eq!(v, vec![0, 1, 3, 4, 7, 8, 9]);
    }

    #[test]
    fn sorts_by_popcount_like_the_scoreboard() {
        // The input of Fig. 5 step ①: TransRows 14,2,5,1,15,7,2.
        let mut v = vec![14u16, 2, 5, 1, 15, 7, 2];
        bitonic_sort_by_key(&mut v, |x| x.count_ones());
        assert!(is_sorted_by(&v, |x| x.count_ones()));
        // Level composition preserved: {1,2,2} at L1, {5} at L2, …
        assert_eq!(v.iter().filter(|x| x.count_ones() == 1).count(), 3);
        assert_eq!(*v.last().unwrap(), 15);
    }

    #[test]
    fn depth_formula() {
        assert_eq!(bitonic_depth(1), 0);
        assert_eq!(bitonic_depth(2), 1);
        assert_eq!(bitonic_depth(4), 3);
        assert_eq!(bitonic_depth(256), 36);
        assert_eq!(bitonic_depth(200), 36); // padded to 256
    }

    #[test]
    fn handles_trivial_inputs() {
        let mut empty: Vec<u32> = vec![];
        let r = bitonic_sort_by_key(&mut empty, |&x| x);
        assert_eq!(r.comparators, 0);
        let mut one = vec![42u32];
        let r = bitonic_sort_by_key(&mut one, |&x| x);
        assert_eq!(r.depth, 0);
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn exhaustive_small_permutations() {
        // All permutations of 0..5 sort correctly.
        fn permute(v: &mut Vec<u32>, k: usize, out: &mut Vec<Vec<u32>>) {
            if k == 1 {
                out.push(v.clone());
                return;
            }
            for i in 0..k {
                permute(v, k - 1, out);
                if k.is_multiple_of(2) {
                    v.swap(i, k - 1);
                } else {
                    v.swap(0, k - 1);
                }
            }
        }
        let mut base = vec![0u32, 1, 2, 3, 4];
        let mut perms = Vec::new();
        permute(&mut base, 5, &mut perms);
        assert_eq!(perms.len(), 120);
        for mut p in perms {
            bitonic_sort_by_key(&mut p, |&x| x);
            assert_eq!(p, vec![0, 1, 2, 3, 4]);
        }
    }
}
