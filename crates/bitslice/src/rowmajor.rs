//! Flat row-major buffers — the zero-copy substrate of the execution
//! engine.
//!
//! The functional GEMM path used to stage inputs and accumulators as
//! nested `Vec<Vec<i64>>`, paying one heap allocation per row and a
//! pointer chase per access. These types replace that with single
//! contiguous allocations:
//!
//! * [`RowMajor`] — an owned `rows × cols` buffer with slice accessors;
//! * [`RowsMut`] — a mutable view over a contiguous row range (the shard
//!   of the output accumulator one worker owns);
//! * [`TileView`] — a borrowed, possibly strided view of input rows (the
//!   `T` staged input rows one sub-tile evaluation reads).

/// An owned, contiguous row-major `rows × cols` buffer.
///
/// # Examples
///
/// ```
/// use ta_bitslice::RowMajor;
///
/// let mut m = RowMajor::<i64>::zeros(2, 3);
/// m.row_mut(1)[2] = 7;
/// assert_eq!(m.row(1), &[0, 0, 7]);
/// assert_eq!(m.as_slice().len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowMajor<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> RowMajor<T> {
    /// Creates a buffer of `rows × cols` default-valued elements.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![T::default(); rows * cols] }
    }
}

impl<T> RowMajor<T> {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (the row length).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[T] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        assert!(r < self.rows, "row {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The whole buffer as one flat slice (row-major).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The whole buffer as one flat mutable slice (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl RowMajor<i64> {
    /// Borrows rows `[r0, r0 + rows)` as a [`TileView`].
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the buffer.
    pub fn view_rows(&self, r0: usize, rows: usize) -> TileView<'_> {
        assert!(r0 + rows <= self.rows, "row range {r0}..{} out of bounds", r0 + rows);
        TileView::new(
            &self.data[r0 * self.cols..(r0 + rows) * self.cols],
            rows,
            self.cols,
            self.cols,
        )
    }
}

/// A mutable view over a contiguous block of rows — how the output
/// accumulator is sharded across workers without any per-row `Vec`.
///
/// # Examples
///
/// ```
/// use ta_bitslice::RowsMut;
///
/// let mut data = vec![0i64; 6];
/// let mut v = RowsMut::new(&mut data, 3);
/// v.row_mut(1)[0] = 5;
/// assert_eq!(data, [0, 0, 0, 5, 0, 0]);
/// ```
#[derive(Debug)]
pub struct RowsMut<'a, T> {
    data: &'a mut [T],
    cols: usize,
}

impl<'a, T> RowsMut<'a, T> {
    /// Wraps a flat slice as rows of `cols` elements.
    ///
    /// # Panics
    ///
    /// Panics if the slice length is not a multiple of `cols` (a
    /// zero-`cols` view over an empty slice is allowed — degenerate
    /// GEMMs with `m = 0` produce it).
    pub fn new(data: &'a mut [T], cols: usize) -> Self {
        assert!(
            (cols == 0 && data.is_empty()) || (cols > 0 && data.len().is_multiple_of(cols)),
            "slice length {} is not a whole number of {cols}-wide rows",
            data.len()
        );
        Self { data, cols }
    }

    /// Number of rows in the view.
    pub fn rows(&self) -> usize {
        self.data.len().checked_div(self.cols).unwrap_or(0)
    }

    /// Row `r` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }
}

/// A borrowed view of `rows` input rows of length `cols`, laid out at a
/// fixed `stride` inside one contiguous buffer — what a sub-tile
/// evaluation reads instead of `&[Vec<i64>]`.
///
/// # Examples
///
/// ```
/// use ta_bitslice::TileView;
///
/// // Two length-2 rows strided 3 apart inside one buffer.
/// let buf = [1i64, 2, 99, 4, 5, 99];
/// let v = TileView::new(&buf, 2, 2, 3);
/// assert_eq!(v.row(0), &[1, 2]);
/// assert_eq!(v.row(1), &[4, 5]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TileView<'a> {
    data: &'a [i64],
    rows: usize,
    cols: usize,
    stride: usize,
}

impl<'a> TileView<'a> {
    /// Wraps `data`: row `r` is `data[r·stride .. r·stride + cols]`.
    ///
    /// # Panics
    ///
    /// Panics if `stride < cols` or the last row exceeds `data`.
    pub fn new(data: &'a [i64], rows: usize, cols: usize, stride: usize) -> Self {
        assert!(stride >= cols, "stride {stride} must cover the row length {cols}");
        if rows > 0 {
            let need = (rows - 1) * stride + cols;
            assert!(
                data.len() >= need,
                "buffer of {} too short for view needing {need}",
                data.len()
            );
        }
        Self { data, rows, cols, stride }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row length.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[i64] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.stride..r * self.stride + self.cols]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rowmajor_rows_are_disjoint_and_contiguous() {
        let mut m = RowMajor::<i64>::zeros(3, 4);
        for r in 0..3 {
            for (c, v) in m.row_mut(r).iter_mut().enumerate() {
                *v = (r * 4 + c) as i64;
            }
        }
        assert_eq!(m.as_slice(), (0..12).map(|v| v as i64).collect::<Vec<_>>().as_slice());
        assert_eq!(m.row(2), &[8, 9, 10, 11]);
        assert_eq!((m.rows(), m.cols()), (3, 4));
    }

    #[test]
    fn view_rows_window() {
        let mut m = RowMajor::<i64>::zeros(4, 2);
        m.as_mut_slice().copy_from_slice(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let v = m.view_rows(1, 2);
        assert_eq!(v.rows(), 2);
        assert_eq!(v.row(0), &[2, 3]);
        assert_eq!(v.row(1), &[4, 5]);
    }

    #[test]
    fn strided_tile_view() {
        let buf: Vec<i64> = (0..12).collect();
        let v = TileView::new(&buf, 3, 2, 4);
        assert_eq!(v.row(0), &[0, 1]);
        assert_eq!(v.row(2), &[8, 9]);
        assert_eq!(v.cols(), 2);
    }

    #[test]
    fn rows_mut_partitions() {
        let mut data = vec![0i64; 8];
        let (a, b) = data.split_at_mut(4);
        let mut va = RowsMut::new(a, 2);
        let mut vb = RowsMut::new(b, 2);
        va.row_mut(1)[1] = 3;
        vb.row_mut(0)[0] = 9;
        assert_eq!(va.rows(), 2);
        assert_eq!(data, [0, 0, 0, 3, 9, 0, 0, 0]);
    }

    #[test]
    fn zero_width_rows_mut_is_empty() {
        let mut data: Vec<i64> = Vec::new();
        let v = RowsMut::new(&mut data, 0);
        assert_eq!(v.rows(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rowmajor_row_oob_panics() {
        let m = RowMajor::<i64>::zeros(1, 1);
        let _ = m.row(1);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn tile_view_rejects_short_buffer() {
        let buf = [0i64; 3];
        let _ = TileView::new(&buf, 2, 2, 3);
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn rows_mut_rejects_ragged_slice() {
        let mut data = vec![0i64; 5];
        let _ = RowsMut::new(&mut data, 2);
    }
}
