//! TransRows — the fundamental unit of transitive sparsity (§2.2).
//!
//! A TransRow is the `T`-bit slice of one binary weight row over one
//! `T`-wide chunk of the reduction dimension. Its *pattern* (an unsigned
//! integer < 2^T) is the node identity in the Hasse graph; its *row index*
//! remembers where the result must be accumulated (Fig. 3 "Store output by
//! Row Index").

use crate::binmat::BinaryMatrix;
use crate::kernels;
use crate::slicer::BitSlicedMatrix;

/// One TransRow: a `T`-bit pattern plus the tile-local binary row it came
/// from.
///
/// # Examples
///
/// ```
/// use ta_bitslice::TransRow;
///
/// let tr = TransRow::new(0b1011, 0);
/// assert_eq!(tr.popcount(), 3);
/// assert!(TransRow::new(0b0011, 2).is_subset_of(&tr));
/// assert_eq!(tr.xor_diff(&TransRow::new(0b0011, 2)), 0b1000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransRow {
    pattern: u16,
    row_index: u32,
}

impl TransRow {
    /// Creates a TransRow.
    pub fn new(pattern: u16, row_index: u32) -> Self {
        Self { pattern, row_index }
    }

    /// The `T`-bit pattern (Hasse node identity).
    #[inline]
    pub fn pattern(&self) -> u16 {
        self.pattern
    }

    /// Tile-local binary row index ("RI" in Fig. 3).
    #[inline]
    pub fn row_index(&self) -> u32 {
        self.row_index
    }

    /// Hamming weight of the pattern (the node's Hasse level).
    #[inline]
    pub fn popcount(&self) -> u32 {
        self.pattern.count_ones()
    }

    /// Whether every set bit of `self` is also set in `other` — i.e.
    /// `other` can transitively reuse `self`'s result.
    #[inline]
    pub fn is_subset_of(&self, other: &TransRow) -> bool {
        self.pattern & other.pattern == self.pattern
    }

    /// The difference bits between two patterns (the "TranSparsity" the
    /// dispatcher computes with a single XOR gate, §4.3).
    #[inline]
    pub fn xor_diff(&self, other: &TransRow) -> u16 {
        self.pattern ^ other.pattern
    }

    /// Whether the pattern is all-zero (a ZR row — skipped entirely).
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.pattern == 0
    }
}

/// Extracts the TransRows of one sub-tile: binary rows `[row0, row0+rows)`
/// of `planes`, columns `[k0, k0+width)`. Rows/columns past the matrix
/// edge read as zero (tile padding).
///
/// Row indices in the result are tile-local (0-based from `row0`).
///
/// # Panics
///
/// Panics if `width` is outside `1..=16`.
///
/// # Examples
///
/// ```
/// use ta_bitslice::{extract_transrows, BinaryMatrix};
///
/// let m = BinaryMatrix::from_fn(2, 4, |r, c| (r + c) % 2 == 0);
/// let trs = extract_transrows(&m, 0, 2, 0, 4);
/// assert_eq!(trs.len(), 2);
/// assert_eq!(trs[0].pattern(), 0b0101);
/// assert_eq!(trs[1].pattern(), 0b1010);
/// ```
pub fn extract_transrows(
    planes: &BinaryMatrix,
    row0: usize,
    rows: usize,
    k0: usize,
    width: u32,
) -> Vec<TransRow> {
    assert!((1..=16).contains(&width), "TransRow width must be in 1..=16");
    let mut out = Vec::with_capacity(rows);
    let present = rows.min(planes.rows().saturating_sub(row0));
    for r in 0..present {
        out.push(TransRow::new(kernels::extract_bits(planes.words(row0 + r), k0, width), r as u32));
    }
    for r in present..rows {
        out.push(TransRow::new(0, r as u32));
    }
    out
}

/// Deprecated shim for [`kernels::extract_subtile_patterns_into`] — the
/// buffer-filling sub-tile extraction now lives on the kernel facade.
/// Same semantics: `out` is cleared first, and rows/columns past the
/// matrix edge read as zero.
///
/// # Panics
///
/// Panics if `width` is outside `1..=16`.
#[deprecated(
    since = "0.1.0",
    note = "use `ta_bitslice::kernels::extract_subtile_patterns_into` instead"
)]
pub fn extract_subtile_patterns_into(
    planes: &BinaryMatrix,
    row0: usize,
    rows: usize,
    k0: usize,
    width: u32,
    out: &mut Vec<u16>,
) {
    kernels::extract_subtile_patterns_into(planes, row0, rows, k0, width, out);
}

/// Convenience wrapper over [`extract_transrows`] for a [`BitSlicedMatrix`]
/// sub-tile covering weight rows `[n0, n0+n)` (i.e. binary rows
/// `[n0·S, (n0+n)·S)`).
pub fn extract_subtile_transrows(
    sliced: &BitSlicedMatrix,
    n0: usize,
    n: usize,
    k0: usize,
    width: u32,
) -> Vec<TransRow> {
    let s = sliced.bits() as usize;
    extract_transrows(sliced.planes(), n0 * s, n * s, k0, width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ta_quant::MatI32;

    #[test]
    fn subset_and_xor_match_paper_example() {
        // Fig. 3: TransRow 11 (1011) reuses TransRow 3 (0011); difference
        // bits 1000.
        let t11 = TransRow::new(0b1011, 0);
        let t3 = TransRow::new(0b0011, 2);
        assert!(t3.is_subset_of(&t11));
        assert!(!t11.is_subset_of(&t3));
        assert_eq!(t11.xor_diff(&t3), 0b1000);
        assert_eq!(t11.popcount(), 3);
    }

    #[test]
    fn zero_detection() {
        assert!(TransRow::new(0, 5).is_zero());
        assert!(!TransRow::new(1, 5).is_zero());
    }

    #[test]
    fn extract_with_row_padding() {
        let m = BinaryMatrix::from_fn(2, 4, |_, _| true);
        let trs = extract_transrows(&m, 1, 3, 0, 4);
        assert_eq!(trs[0].pattern(), 0b1111);
        assert_eq!(trs[1].pattern(), 0); // padded row
        assert_eq!(trs[2].pattern(), 0);
        assert_eq!(trs[1].row_index(), 1);
    }

    #[test]
    fn extract_with_column_padding() {
        let m = BinaryMatrix::from_fn(1, 6, |_, _| true);
        let trs = extract_transrows(&m, 0, 1, 4, 4);
        // Columns 4,5 exist; 6,7 pad to zero → pattern 0011.
        assert_eq!(trs[0].pattern(), 0b0011);
    }

    #[test]
    fn subtile_extraction_covers_all_bit_levels() {
        let w = MatI32::from_rows(&[&[5, -3], &[1, 7], &[-8, 2]]);
        let s = BitSlicedMatrix::slice(&w, 4);
        // Weight rows 1..3 → binary rows 4..12.
        let trs = extract_subtile_transrows(&s, 1, 2, 0, 2);
        assert_eq!(trs.len(), 8);
        // Row 1 value 1 = 0001₂: bit level 0 plane has value bit for col 0.
        assert_eq!(trs[0].pattern() & 0b01, 1);
        // Row indices are tile-local and dense.
        for (i, tr) in trs.iter().enumerate() {
            assert_eq!(tr.row_index(), i as u32);
        }
    }

    #[test]
    #[should_panic(expected = "width must be in 1..=16")]
    fn bad_width_rejected() {
        let m = BinaryMatrix::zeros(1, 4);
        let _ = extract_transrows(&m, 0, 1, 0, 17);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shim_matches_kernel_facade() {
        let m = BinaryMatrix::from_fn(5, 30, |r, c| (r * 7 + c * 3) % 4 == 0);
        let (mut old, mut new) = (vec![0xAAAAu16; 2], Vec::new());
        for (row0, rows, k0) in [(0usize, 4usize, 0usize), (3, 6, 24), (7, 3, 40)] {
            extract_subtile_patterns_into(&m, row0, rows, k0, 8, &mut old);
            kernels::extract_subtile_patterns_into(&m, row0, rows, k0, 8, &mut new);
            assert_eq!(old, new, "({row0},{rows},{k0})");
        }
    }
}
