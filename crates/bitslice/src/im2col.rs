//! im2col lowering of 2-D convolutions to GEMM (§5.10).
//!
//! The ResNet-18 experiment (Fig. 14) follows prior work in transforming
//! every convolution into a GEMM: weights become an
//! `(out_c × in_c·kh·kw)` matrix, the input feature map becomes an
//! `(in_c·kh·kw × out_h·out_w)` patch matrix.

use ta_quant::{gemm_i32, MatI32};

/// Shape of a 2-D convolution layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvShape {
    /// Input channels.
    pub in_c: usize,
    /// Output channels.
    pub out_c: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
    /// Input feature-map height.
    pub in_h: usize,
    /// Input feature-map width.
    pub in_w: usize,
}

impl ConvShape {
    /// Output feature-map height.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit the padded input or stride is 0.
    pub fn out_h(&self) -> usize {
        assert!(self.stride > 0, "stride must be non-zero");
        let padded = self.in_h + 2 * self.pad;
        assert!(padded >= self.kh, "kernel taller than padded input");
        (padded - self.kh) / self.stride + 1
    }

    /// Output feature-map width.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit the padded input or stride is 0.
    pub fn out_w(&self) -> usize {
        assert!(self.stride > 0, "stride must be non-zero");
        let padded = self.in_w + 2 * self.pad;
        assert!(padded >= self.kw, "kernel wider than padded input");
        (padded - self.kw) / self.stride + 1
    }

    /// The GEMM dimensions `(N, K, M)` this layer lowers to:
    /// `N = out_c`, `K = in_c·kh·kw`, `M = out_h·out_w`.
    pub fn gemm_dims(&self) -> (usize, usize, usize) {
        (self.out_c, self.in_c * self.kh * self.kw, self.out_h() * self.out_w())
    }

    /// Multiply-accumulate count of the direct convolution (= GEMM MACs).
    pub fn macs(&self) -> u64 {
        let (n, k, m) = self.gemm_dims();
        n as u64 * k as u64 * m as u64
    }
}

/// Lowers an input feature map (`in_c` rows × `in_h·in_w` columns,
/// row-major spatial layout) to the im2col patch matrix
/// (`in_c·kh·kw` rows × `out_h·out_w` columns). Padding reads as zero.
///
/// Patch-matrix row ordering is `(c·kh + ky)·kw + kx` — channel-major,
/// then kernel-row, then kernel-column — matching the weight flattening
/// in [`flatten_weights`].
///
/// # Panics
///
/// Panics if `input` has the wrong shape for `shape`.
pub fn im2col(shape: &ConvShape, input: &MatI32) -> MatI32 {
    // Run-granular lowering via the kernel facade: whole in-bounds output
    // runs are copied per (channel, ky, kx) row instead of per-element
    // bounds-checked stores.
    crate::kernels::im2col_lower(shape, input)
}

/// Flattens convolution weights (`out_c` rows × `in_c·kh·kw` columns
/// already, identical layout to [`im2col`] rows) — provided for symmetry
/// and shape validation.
///
/// # Panics
///
/// Panics if the weight matrix shape disagrees with `shape`.
pub fn flatten_weights(shape: &ConvShape, weights: &MatI32) -> MatI32 {
    assert_eq!(weights.rows(), shape.out_c, "out_c mismatch");
    assert_eq!(weights.cols(), shape.in_c * shape.kh * shape.kw, "kernel volume mismatch");
    weights.clone()
}

/// Direct (loop-nest) convolution reference, used to prove the im2col
/// lowering exact: `conv_direct(...) == gemm(flatten_weights, im2col)`.
pub fn conv_direct(shape: &ConvShape, weights: &MatI32, input: &MatI32) -> MatI32 {
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let mut out = MatI32::zeros(shape.out_c, oh * ow);
    for oc in 0..shape.out_c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc: i64 = 0;
                for c in 0..shape.in_c {
                    for ky in 0..shape.kh {
                        for kx in 0..shape.kw {
                            let iy = (oy * shape.stride + ky) as isize - shape.pad as isize;
                            let ix = (ox * shape.stride + kx) as isize - shape.pad as isize;
                            if iy >= 0
                                && ix >= 0
                                && (iy as usize) < shape.in_h
                                && (ix as usize) < shape.in_w
                            {
                                let w = weights.get(oc, (c * shape.kh + ky) * shape.kw + kx) as i64;
                                let x = input.get(c, iy as usize * shape.in_w + ix as usize) as i64;
                                acc += w * x;
                            }
                        }
                    }
                }
                out.set(oc, oy * ow + ox, acc as i32);
            }
        }
    }
    out
}

/// Convolution via im2col + GEMM (the path the accelerators execute).
pub fn conv_im2col(shape: &ConvShape, weights: &MatI32, input: &MatI32) -> MatI32 {
    let patches = im2col(shape, input);
    let w = flatten_weights(shape, weights);
    gemm_i32(&w, &patches)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_shape() -> ConvShape {
        ConvShape { in_c: 3, out_c: 4, kh: 3, kw: 3, stride: 1, pad: 1, in_h: 6, in_w: 5 }
    }

    fn det_input(shape: &ConvShape, seed: i32) -> MatI32 {
        MatI32::from_fn(shape.in_c, shape.in_h * shape.in_w, |r, c| {
            ((r as i32 * 31 + c as i32 * 7 + seed) % 15) - 7
        })
    }

    fn det_weights(shape: &ConvShape, seed: i32) -> MatI32 {
        MatI32::from_fn(shape.out_c, shape.in_c * shape.kh * shape.kw, |r, c| {
            ((r as i32 * 13 + c as i32 * 5 + seed) % 15) - 7
        })
    }

    #[test]
    fn output_dims_with_padding() {
        let s = test_shape();
        assert_eq!(s.out_h(), 6);
        assert_eq!(s.out_w(), 5);
        assert_eq!(s.gemm_dims(), (4, 27, 30));
        assert_eq!(s.macs(), 4 * 27 * 30);
    }

    #[test]
    fn output_dims_with_stride() {
        let s = ConvShape { stride: 2, ..test_shape() };
        assert_eq!(s.out_h(), 3);
        assert_eq!(s.out_w(), 3);
    }

    #[test]
    fn im2col_equals_direct_conv() {
        let s = test_shape();
        let w = det_weights(&s, 3);
        let x = det_input(&s, 11);
        assert_eq!(conv_im2col(&s, &w, &x), conv_direct(&s, &w, &x));
    }

    #[test]
    fn im2col_equals_direct_conv_strided_unpadded() {
        let s = ConvShape { stride: 2, pad: 0, in_h: 9, in_w: 7, ..test_shape() };
        let w = det_weights(&s, 5);
        let x = det_input(&s, 1);
        assert_eq!(conv_im2col(&s, &w, &x), conv_direct(&s, &w, &x));
    }

    #[test]
    fn one_by_one_conv_is_plain_gemm() {
        let s = ConvShape { in_c: 5, out_c: 3, kh: 1, kw: 1, stride: 1, pad: 0, in_h: 4, in_w: 4 };
        let w = det_weights(&s, 2);
        let x = det_input(&s, 9);
        let patches = im2col(&s, &x);
        // With a 1x1 kernel the patch matrix *is* the input.
        assert_eq!(patches, x);
        assert_eq!(conv_im2col(&s, &w, &x), gemm_i32(&w, &x));
    }

    #[test]
    fn padding_contributes_zeros() {
        let s = ConvShape { in_c: 1, out_c: 1, kh: 3, kw: 3, stride: 1, pad: 1, in_h: 2, in_w: 2 };
        let x = MatI32::from_rows(&[&[1, 1, 1, 1]]);
        let patches = im2col(&s, &x);
        // Corner output (0,0): only the 4 in-bounds taps are non-zero.
        let col0: i32 = (0..9).map(|r| patches.get(r, 0)).sum();
        assert_eq!(col0, 4);
    }

    #[test]
    #[should_panic(expected = "channel count mismatch")]
    fn wrong_input_shape_rejected() {
        let s = test_shape();
        let _ = im2col(&s, &MatI32::zeros(2, 30));
    }
}
