//! Packed binary matrices.
//!
//! The bit-sliced weight tensor is a 0/1 matrix of shape `(S·N × K)`
//! (Fig. 2). [`BinaryMatrix`] stores it packed 64 rows-bits per word with
//! fast per-row chunk extraction — the operation that produces TransRows.

use crate::kernels;
use std::fmt;

/// A dense 0/1 matrix, bit-packed row-major (`u64` words per row).
///
/// # Examples
///
/// ```
/// use ta_bitslice::BinaryMatrix;
///
/// let mut m = BinaryMatrix::zeros(2, 10);
/// m.set(1, 9, true);
/// assert!(m.get(1, 9));
/// assert_eq!(m.row_popcount(1), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BinaryMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl BinaryMatrix {
    /// Creates an all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(64);
        Self { rows, cols, words_per_row, words: vec![0; rows * words_per_row] }
    }

    /// Builds a matrix by evaluating a predicate per element. Words are
    /// assembled directly ([`Self::set_row_from_fn`]) rather than via
    /// per-element [`Self::set`] read-modify-writes.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> bool) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            m.set_row_from_fn(r, |c| f(r, c));
        }
        m
    }

    /// Overwrites row `r` from a per-column predicate, assembling each
    /// packed `u64` word in a register before one store — the word-level
    /// row builder behind [`Self::from_fn`] and the bit-slicer.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn set_row_from_fn(&mut self, r: usize, mut f: impl FnMut(usize) -> bool) {
        assert!(r < self.rows, "row {r} out of bounds");
        let words = &mut self.words[r * self.words_per_row..(r + 1) * self.words_per_row];
        for (wi, word) in words.iter_mut().enumerate() {
            let c0 = wi * 64;
            let lanes = (self.cols - c0).min(64);
            let mut w = 0u64;
            for b in 0..lanes {
                w |= u64::from(f(c0 + b)) << b;
            }
            *word = w;
        }
    }

    /// The packed `u64` words of row `r`: bit `c` of the row is bit
    /// `c % 64` of word `c / 64`. Bits at positions `>= cols` in the last
    /// word are always zero (the tail-zero invariant the word kernels in
    /// [`crate::kernels`] rely on).
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn words(&self, r: usize) -> &[u64] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.words[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// Mutable packed words of row `r` — the raw store the write kernels
    /// ([`crate::kernels::insert_bits`], [`crate::kernels::slice_rows`])
    /// assemble rows through.
    ///
    /// **Caller obligation:** bits at positions `>= cols` in the last
    /// word must be left zero. The read kernels and popcounts rely on
    /// that tail-zero invariant instead of re-masking per call.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn words_mut(&mut self, r: usize) -> &mut [u64] {
        assert!(r < self.rows, "row {r} out of bounds");
        &mut self.words[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// Stacks blocks vertically (in order) into one matrix — the stitch
    /// step of sharded bit-slicing. The packed row-major layout makes
    /// this a straight word concatenation.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty or the column counts disagree.
    pub fn vstack(blocks: &[BinaryMatrix]) -> Self {
        let first = blocks.first().expect("vstack needs at least one block");
        let cols = first.cols;
        let words_per_row = first.words_per_row;
        let mut rows = 0usize;
        let mut words = Vec::with_capacity(blocks.iter().map(|b| b.words.len()).sum());
        for b in blocks {
            assert_eq!(b.cols, cols, "vstack blocks must have equal column counts");
            rows += b.rows;
            words.extend_from_slice(&b.words);
        }
        Self { rows, cols, words_per_row, words }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Bit at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        let w = self.words[r * self.words_per_row + c / 64];
        (w >> (c % 64)) & 1 == 1
    }

    /// Sets the bit at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: bool) {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        let w = &mut self.words[r * self.words_per_row + c / 64];
        if v {
            *w |= 1u64 << (c % 64);
        } else {
            *w &= !(1u64 << (c % 64));
        }
    }

    /// Number of set bits in row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_popcount(&self, r: usize) -> u32 {
        kernels::popcount_words(self.words(r)) as u32
    }

    /// Total number of set bits.
    pub fn popcount(&self) -> u64 {
        // One pass over the whole packed store: tail bits are zero by
        // invariant, so no per-row masking is needed.
        kernels::popcount_words(&self.words)
    }

    /// Fraction of set bits (the *bit density* that bit-sparsity
    /// accelerators exploit; ≈0.5 for uniform random data, Fig. 13's
    /// reference line).
    pub fn bit_density(&self) -> f64 {
        let total = (self.rows * self.cols) as f64;
        if total == 0.0 {
            0.0
        } else {
            self.popcount() as f64 / total
        }
    }

    /// Extracts `width ≤ 16` bits of row `r` starting at column `c0` as an
    /// unsigned pattern — **the TransRow extraction primitive**. Bit `j` of
    /// the result corresponds to column `c0 + j`; columns past the matrix
    /// edge read as 0 (zero-padding, matching the tiling engine).
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `width > 16` or `width == 0`.
    pub fn extract_pattern(&self, r: usize, c0: usize, width: u32) -> u16 {
        // Word-level via the kernel facade: at most two packed words
        // cover any ≤16-bit window, and tail bits are zero by invariant.
        kernels::extract_bits(self.words(r), c0, width)
    }

    /// Writes `width` bits of `pattern` into row `r` starting at `c0`
    /// (bits past the edge are dropped).
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `width > 16` or `width == 0`.
    pub fn insert_pattern(&mut self, r: usize, c0: usize, width: u32, pattern: u16) {
        let cols = self.cols;
        kernels::insert_bits(self.words_mut(r), cols, c0, width, pattern);
    }

    /// Copies rows `[r0, r0+n)` into a new matrix, zero-padding past the
    /// end.
    pub fn rows_padded(&self, r0: usize, n: usize) -> Self {
        let mut out = Self::zeros(n, self.cols);
        for r in 0..n {
            let sr = r0 + r;
            if sr >= self.rows {
                break;
            }
            let src = &self.words[sr * self.words_per_row..(sr + 1) * self.words_per_row];
            out.words[r * self.words_per_row..(r + 1) * self.words_per_row].copy_from_slice(src);
        }
        out
    }
}

impl fmt::Debug for BinaryMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BinaryMatrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(16) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(64) {
                write!(f, "{}", u8::from(self.get(r, c)))?;
            }
            writeln!(f, "{}", if self.cols > 64 { "…" } else { "" })?;
        }
        if self.rows > 16 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_across_word_boundary() {
        let mut m = BinaryMatrix::zeros(2, 130);
        for c in [0usize, 63, 64, 65, 127, 128, 129] {
            m.set(1, c, true);
            assert!(m.get(1, c), "col {c}");
            assert!(!m.get(0, c), "row isolation at col {c}");
        }
        assert_eq!(m.row_popcount(1), 7);
        assert_eq!(m.row_popcount(0), 0);
        m.set(1, 64, false);
        assert!(!m.get(1, 64));
        assert_eq!(m.row_popcount(1), 6);
    }

    #[test]
    fn from_fn_checkerboard() {
        let m = BinaryMatrix::from_fn(4, 4, |r, c| (r + c) % 2 == 0);
        assert_eq!(m.popcount(), 8);
        assert!((m.bit_density() - 0.5).abs() < 1e-12);
    }

    /// Scalar reference builder: the per-element `set` loop the word-level
    /// [`BinaryMatrix::from_fn`] replaced.
    fn from_fn_scalar(
        rows: usize,
        cols: usize,
        mut f: impl FnMut(usize, usize) -> bool,
    ) -> BinaryMatrix {
        let mut m = BinaryMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if f(r, c) {
                    m.set(r, c, true);
                }
            }
        }
        m
    }

    #[test]
    fn word_level_from_fn_matches_scalar() {
        // Shapes straddling word boundaries, including exact multiples.
        for (rows, cols) in [(1usize, 1usize), (3, 63), (2, 64), (4, 65), (5, 130), (1, 200)] {
            for seed in 0u64..4 {
                let f = |r: usize, c: usize| {
                    (r as u64)
                        .wrapping_mul(0x9E3779B97F4A7C15)
                        .wrapping_add((c as u64).wrapping_mul(0xBF58476D1CE4E5B9))
                        .wrapping_add(seed)
                        .count_ones()
                        % 2
                        == 0
                };
                let word = BinaryMatrix::from_fn(rows, cols, f);
                let scalar = from_fn_scalar(rows, cols, f);
                assert_eq!(word, scalar, "{rows}x{cols} seed {seed}");
            }
        }
    }

    #[test]
    fn set_row_from_fn_leaves_tail_bits_zero() {
        // cols = 70: the second word has 58 unused bits that must stay
        // zero even when the predicate is all-true (the extract_pattern
        // fast path relies on that invariant).
        let mut m = BinaryMatrix::zeros(2, 70);
        m.set_row_from_fn(1, |_| true);
        assert_eq!(m.row_popcount(1), 70);
        assert_eq!(m.row_popcount(0), 0);
        assert_eq!(m.extract_pattern(1, 66, 16), 0b1111, "columns 70.. read as zero");
    }

    #[test]
    fn extract_pattern_matches_scalar_get_loop() {
        let m = BinaryMatrix::from_fn(3, 150, |r, c| (r * 31 + c * 7) % 3 == 0);
        for r in 0..3 {
            for c0 in [0usize, 1, 40, 55, 60, 63, 64, 65, 120, 140, 148, 149, 160] {
                for width in [1u32, 4, 8, 15, 16] {
                    let mut expect = 0u16;
                    for j in 0..width as usize {
                        if c0 + j < m.cols() && m.get(r, c0 + j) {
                            expect |= 1 << j;
                        }
                    }
                    assert_eq!(
                        m.extract_pattern(r, c0, width),
                        expect,
                        "r={r} c0={c0} width={width}"
                    );
                }
            }
        }
    }

    #[test]
    fn extract_pattern_basic() {
        let mut m = BinaryMatrix::zeros(1, 8);
        // Row bits: 1011 at columns 0..4 (bit j ↔ column j).
        m.set(0, 0, true);
        m.set(0, 1, true);
        m.set(0, 3, true);
        assert_eq!(m.extract_pattern(0, 0, 4), 0b1011);
        assert_eq!(m.extract_pattern(0, 1, 4), 0b0101);
        // Past the edge pads with zeros.
        assert_eq!(m.extract_pattern(0, 6, 4), 0);
    }

    #[test]
    fn extract_pattern_straddles_words() {
        let mut m = BinaryMatrix::zeros(1, 80);
        m.set(0, 62, true);
        m.set(0, 65, true);
        assert_eq!(m.extract_pattern(0, 62, 4), 0b1001);
    }

    #[test]
    fn insert_extract_roundtrip() {
        let mut m = BinaryMatrix::zeros(3, 40);
        for (i, p) in [0b1010u16, 0b1111, 0b0001].iter().enumerate() {
            m.insert_pattern(i, 8, 4, *p);
            assert_eq!(m.extract_pattern(i, 8, 4), *p);
        }
        // Other columns untouched.
        assert_eq!(m.extract_pattern(0, 0, 8), 0);
    }

    #[test]
    fn rows_padded_copies_and_pads() {
        let m = BinaryMatrix::from_fn(3, 5, |r, c| c == r);
        let t = m.rows_padded(1, 4);
        assert_eq!(t.rows(), 4);
        assert!(t.get(0, 1)); // original row 1
        assert!(t.get(1, 2)); // original row 2
        assert_eq!(t.row_popcount(2), 0); // padding
        assert_eq!(t.row_popcount(3), 0);
    }

    #[test]
    fn empty_matrix_density() {
        assert_eq!(BinaryMatrix::zeros(0, 0).bit_density(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_oob_panics() {
        let m = BinaryMatrix::zeros(1, 1);
        let _ = m.get(0, 1);
    }

    #[test]
    #[should_panic(expected = "pattern width")]
    fn extract_width_zero_panics() {
        let m = BinaryMatrix::zeros(1, 8);
        let _ = m.extract_pattern(0, 0, 0);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", BinaryMatrix::zeros(1, 1)).is_empty());
    }
}
