//! Packed binary matrices.
//!
//! The bit-sliced weight tensor is a 0/1 matrix of shape `(S·N × K)`
//! (Fig. 2). [`BinaryMatrix`] stores it packed 64 rows-bits per word with
//! fast per-row chunk extraction — the operation that produces TransRows.

use std::fmt;

/// A dense 0/1 matrix, bit-packed row-major (`u64` words per row).
///
/// # Examples
///
/// ```
/// use ta_bitslice::BinaryMatrix;
///
/// let mut m = BinaryMatrix::zeros(2, 10);
/// m.set(1, 9, true);
/// assert!(m.get(1, 9));
/// assert_eq!(m.row_popcount(1), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BinaryMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl BinaryMatrix {
    /// Creates an all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(64);
        Self { rows, cols, words_per_row, words: vec![0; rows * words_per_row] }
    }

    /// Builds a matrix by evaluating a predicate per element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> bool) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if f(r, c) {
                    m.set(r, c, true);
                }
            }
        }
        m
    }

    /// Stacks blocks vertically (in order) into one matrix — the stitch
    /// step of sharded bit-slicing. The packed row-major layout makes
    /// this a straight word concatenation.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty or the column counts disagree.
    pub fn vstack(blocks: &[BinaryMatrix]) -> Self {
        let first = blocks.first().expect("vstack needs at least one block");
        let cols = first.cols;
        let words_per_row = first.words_per_row;
        let mut rows = 0usize;
        let mut words = Vec::with_capacity(blocks.iter().map(|b| b.words.len()).sum());
        for b in blocks {
            assert_eq!(b.cols, cols, "vstack blocks must have equal column counts");
            rows += b.rows;
            words.extend_from_slice(&b.words);
        }
        Self { rows, cols, words_per_row, words }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Bit at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        let w = self.words[r * self.words_per_row + c / 64];
        (w >> (c % 64)) & 1 == 1
    }

    /// Sets the bit at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: bool) {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        let w = &mut self.words[r * self.words_per_row + c / 64];
        if v {
            *w |= 1u64 << (c % 64);
        } else {
            *w &= !(1u64 << (c % 64));
        }
    }

    /// Number of set bits in row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_popcount(&self, r: usize) -> u32 {
        assert!(r < self.rows, "row {r} out of bounds");
        self.words[r * self.words_per_row..(r + 1) * self.words_per_row]
            .iter()
            .map(|w| w.count_ones())
            .sum()
    }

    /// Total number of set bits.
    pub fn popcount(&self) -> u64 {
        (0..self.rows).map(|r| self.row_popcount(r) as u64).sum()
    }

    /// Fraction of set bits (the *bit density* that bit-sparsity
    /// accelerators exploit; ≈0.5 for uniform random data, Fig. 13's
    /// reference line).
    pub fn bit_density(&self) -> f64 {
        let total = (self.rows * self.cols) as f64;
        if total == 0.0 {
            0.0
        } else {
            self.popcount() as f64 / total
        }
    }

    /// Extracts `width ≤ 16` bits of row `r` starting at column `c0` as an
    /// unsigned pattern — **the TransRow extraction primitive**. Bit `j` of
    /// the result corresponds to column `c0 + j`; columns past the matrix
    /// edge read as 0 (zero-padding, matching the tiling engine).
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `width > 16` or `width == 0`.
    pub fn extract_pattern(&self, r: usize, c0: usize, width: u32) -> u16 {
        assert!(r < self.rows, "row {r} out of bounds");
        assert!((1..=16).contains(&width), "pattern width must be in 1..=16");
        let mut p: u16 = 0;
        for j in 0..width as usize {
            let c = c0 + j;
            if c < self.cols && self.get(r, c) {
                p |= 1 << j;
            }
        }
        p
    }

    /// Writes `width` bits of `pattern` into row `r` starting at `c0`
    /// (bits past the edge are dropped).
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `width > 16` or `width == 0`.
    pub fn insert_pattern(&mut self, r: usize, c0: usize, width: u32, pattern: u16) {
        assert!(r < self.rows, "row {r} out of bounds");
        assert!((1..=16).contains(&width), "pattern width must be in 1..=16");
        for j in 0..width as usize {
            let c = c0 + j;
            if c < self.cols {
                self.set(r, c, pattern & (1 << j) != 0);
            }
        }
    }

    /// Copies rows `[r0, r0+n)` into a new matrix, zero-padding past the
    /// end.
    pub fn rows_padded(&self, r0: usize, n: usize) -> Self {
        let mut out = Self::zeros(n, self.cols);
        for r in 0..n {
            let sr = r0 + r;
            if sr >= self.rows {
                break;
            }
            let src = &self.words[sr * self.words_per_row..(sr + 1) * self.words_per_row];
            out.words[r * self.words_per_row..(r + 1) * self.words_per_row].copy_from_slice(src);
        }
        out
    }
}

impl fmt::Debug for BinaryMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BinaryMatrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(16) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(64) {
                write!(f, "{}", u8::from(self.get(r, c)))?;
            }
            writeln!(f, "{}", if self.cols > 64 { "…" } else { "" })?;
        }
        if self.rows > 16 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_across_word_boundary() {
        let mut m = BinaryMatrix::zeros(2, 130);
        for c in [0usize, 63, 64, 65, 127, 128, 129] {
            m.set(1, c, true);
            assert!(m.get(1, c), "col {c}");
            assert!(!m.get(0, c), "row isolation at col {c}");
        }
        assert_eq!(m.row_popcount(1), 7);
        assert_eq!(m.row_popcount(0), 0);
        m.set(1, 64, false);
        assert!(!m.get(1, 64));
        assert_eq!(m.row_popcount(1), 6);
    }

    #[test]
    fn from_fn_checkerboard() {
        let m = BinaryMatrix::from_fn(4, 4, |r, c| (r + c) % 2 == 0);
        assert_eq!(m.popcount(), 8);
        assert!((m.bit_density() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn extract_pattern_basic() {
        let mut m = BinaryMatrix::zeros(1, 8);
        // Row bits: 1011 at columns 0..4 (bit j ↔ column j).
        m.set(0, 0, true);
        m.set(0, 1, true);
        m.set(0, 3, true);
        assert_eq!(m.extract_pattern(0, 0, 4), 0b1011);
        assert_eq!(m.extract_pattern(0, 1, 4), 0b0101);
        // Past the edge pads with zeros.
        assert_eq!(m.extract_pattern(0, 6, 4), 0);
    }

    #[test]
    fn extract_pattern_straddles_words() {
        let mut m = BinaryMatrix::zeros(1, 80);
        m.set(0, 62, true);
        m.set(0, 65, true);
        assert_eq!(m.extract_pattern(0, 62, 4), 0b1001);
    }

    #[test]
    fn insert_extract_roundtrip() {
        let mut m = BinaryMatrix::zeros(3, 40);
        for (i, p) in [0b1010u16, 0b1111, 0b0001].iter().enumerate() {
            m.insert_pattern(i, 8, 4, *p);
            assert_eq!(m.extract_pattern(i, 8, 4), *p);
        }
        // Other columns untouched.
        assert_eq!(m.extract_pattern(0, 0, 8), 0);
    }

    #[test]
    fn rows_padded_copies_and_pads() {
        let m = BinaryMatrix::from_fn(3, 5, |r, c| c == r);
        let t = m.rows_padded(1, 4);
        assert_eq!(t.rows(), 4);
        assert!(t.get(0, 1)); // original row 1
        assert!(t.get(1, 2)); // original row 2
        assert_eq!(t.row_popcount(2), 0); // padding
        assert_eq!(t.row_popcount(3), 0);
    }

    #[test]
    fn empty_matrix_density() {
        assert_eq!(BinaryMatrix::zeros(0, 0).bit_density(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_oob_panics() {
        let m = BinaryMatrix::zeros(1, 1);
        let _ = m.get(0, 1);
    }

    #[test]
    #[should_panic(expected = "pattern width")]
    fn extract_width_zero_panics() {
        let m = BinaryMatrix::zeros(1, 8);
        let _ = m.extract_pattern(0, 0, 0);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", BinaryMatrix::zeros(1, 1)).is_empty());
    }
}
