//! Word-parallel kernels — the single home of every bit-sliced hot loop.
//!
//! Every execution path that used to walk bits one at a time (pattern
//! extraction, plane slicing, slab row-adds, im2col lowering, popcount
//! traversal) now funnels through this facade. The kernels operate on
//! `u64` row words (via [`BinaryMatrix::words`]) or on `chunks_exact`-
//! unrolled `i64` rows, with masked-tail handling for widths that are not
//! word multiples.
//!
//! ## Tail-masking contract
//!
//! [`BinaryMatrix`] guarantees that bits at column positions `>= cols` in
//! the last word of every row are zero (no setter writes them). The read
//! kernels ([`extract_bits`], [`popcount_words`]) *rely* on that
//! invariant instead of re-masking per call; the write kernels
//! ([`insert_bits`], [`slice_rows`]) *preserve* it. Callers of
//! [`BinaryMatrix::words_mut`] inherit the same obligation.
//!
//! ## Scalar equivalence
//!
//! Each kernel has a scalar oracle in this module's tests proving
//! bit-exact equivalence over random widths, non-word-multiple tails,
//! and dirty reused buffers — the same `_into ≡ oracle` discipline the
//! rest of the workspace uses.

use crate::binmat::BinaryMatrix;
use crate::im2col::ConvShape;
use crate::rowmajor::TileView;
use ta_quant::MatI32;

// ---------------------------------------------------------------------------
// u64 word kernels (packed binary rows)
// ---------------------------------------------------------------------------

/// Total set bits across `words`, four words per iteration.
#[inline]
pub fn popcount_words(words: &[u64]) -> u64 {
    let mut chunks = words.chunks_exact(4);
    let mut acc = 0u64;
    for c in &mut chunks {
        acc += u64::from(
            c[0].count_ones() + c[1].count_ones() + c[2].count_ones() + c[3].count_ones(),
        );
    }
    for &w in chunks.remainder() {
        acc += u64::from(w.count_ones());
    }
    acc
}

/// Set bits of `a XOR b` (the Hamming distance between two packed rows),
/// four words per iteration — the word form of the dispatcher's
/// TranSparsity XOR (§4.3).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn xor_popcount_words(a: &[u64], b: &[u64]) -> u64 {
    assert_eq!(a.len(), b.len(), "xor_popcount_words: length mismatch");
    let mut ac = a.chunks_exact(4);
    let mut bc = b.chunks_exact(4);
    let mut acc = 0u64;
    for (x, y) in (&mut ac).zip(&mut bc) {
        acc += u64::from(
            (x[0] ^ y[0]).count_ones()
                + (x[1] ^ y[1]).count_ones()
                + (x[2] ^ y[2]).count_ones()
                + (x[3] ^ y[3]).count_ones(),
        );
    }
    for (&x, &y) in ac.remainder().iter().zip(bc.remainder()) {
        acc += u64::from((x ^ y).count_ones());
    }
    acc
}

/// Extracts `width ≤ 16` bits starting at bit offset `c0` from a packed
/// row (as produced by [`BinaryMatrix::words`]) — the TransRow extraction
/// primitive. At most two words cover any ≤16-bit window; offsets past
/// the row's words read as zero, and bits past the matrix edge inside
/// the last word are zero by the tail invariant, so no column clipping
/// is needed.
///
/// # Panics
///
/// Panics if `width` is outside `1..=16`.
#[inline]
pub fn extract_bits(row: &[u64], c0: usize, width: u32) -> u16 {
    assert!((1..=16).contains(&width), "pattern width must be in 1..=16");
    let (wi, off) = (c0 / 64, c0 % 64);
    if wi >= row.len() {
        return 0;
    }
    let mut bits = row[wi] >> off;
    if off as u32 + width > 64 && wi + 1 < row.len() {
        bits |= row[wi + 1] << (64 - off);
    }
    (bits & ((1u32 << width) - 1) as u64) as u16
}

/// Writes `width ≤ 16` bits of `pattern` into a packed row at bit offset
/// `c0`, via masked read-modify-writes on the (at most two) covering
/// words. `cols` is the row's logical width: bits past it are dropped,
/// preserving the tail-zero invariant.
///
/// # Panics
///
/// Panics if `width` is outside `1..=16`.
#[inline]
pub fn insert_bits(row: &mut [u64], cols: usize, c0: usize, width: u32, pattern: u16) {
    assert!((1..=16).contains(&width), "pattern width must be in 1..=16");
    if c0 >= cols {
        return;
    }
    let keep = (width as usize).min(cols - c0);
    let mask = (1u64 << keep) - 1;
    let val = u64::from(pattern) & mask;
    let (wi, off) = (c0 / 64, c0 % 64);
    row[wi] = (row[wi] & !(mask << off)) | (val << off);
    if off + keep > 64 {
        // The window straddles into word wi+1, which exists because
        // c0 + keep <= cols <= row.len() * 64.
        let lo = 64 - off;
        row[wi + 1] = (row[wi + 1] & !(mask >> lo)) | (val >> lo);
    }
}

/// Fills `out` (cleared first) with the `rows` sub-tile patterns of
/// binary rows `[row0, row0+rows)` of `planes` over bit window
/// `[k0, k0+width)` — the allocation-free pattern-source primitive.
/// Rows and columns past the matrix edge read as zero (tile padding).
///
/// This is the facade home of the former free function
/// `ta_bitslice::extract_subtile_patterns_into` (now a deprecated shim).
///
/// # Panics
///
/// Panics if `width` is outside `1..=16`.
pub fn extract_subtile_patterns_into(
    planes: &BinaryMatrix,
    row0: usize,
    rows: usize,
    k0: usize,
    width: u32,
    out: &mut Vec<u16>,
) {
    assert!((1..=16).contains(&width), "TransRow width must be in 1..=16");
    out.clear();
    out.reserve(rows);
    let present = rows.min(planes.rows().saturating_sub(row0));
    for r in 0..present {
        out.push(extract_bits(planes.words(row0 + r), k0, width));
    }
    out.resize(rows, 0);
}

/// Slices source rows `[r0, r1)` of `m` into their `bits` binary planes
/// (2's-complement; binary row `(r - r0)·bits + s` is bit level `s` of
/// source row `r`) — the per-shard slicing kernel.
///
/// One pass per 64-column chunk: each value's set bit levels are
/// scattered into per-level word accumulators (`cost ∝ popcount`), then
/// the assembled words are stored through [`BinaryMatrix::words_mut`].
/// The tail chunk writes only the columns that exist, preserving the
/// tail-zero invariant.
///
/// # Panics
///
/// Panics if `bits` is outside `1..=16` or `r1 > m.rows()`.
pub fn slice_rows(m: &MatI32, bits: u32, r0: usize, r1: usize) -> BinaryMatrix {
    assert!((1..=16).contains(&bits), "bits must be in 1..=16, got {bits}");
    assert!(r1 <= m.rows(), "row range {r0}..{r1} out of bounds");
    let k = m.cols();
    let s = bits as usize;
    let vmask = ((1u64 << bits) - 1) as u32;
    let mut planes = BinaryMatrix::zeros((r1 - r0) * s, k);
    for r in r0..r1 {
        let row = m.row(r);
        for (wi, chunk) in row.chunks(64).enumerate() {
            let mut acc = [0u64; 16];
            for (b, &v) in chunk.iter().enumerate() {
                let mut rem = v as u32 & vmask;
                while rem != 0 {
                    let lvl = rem.trailing_zeros() as usize;
                    rem &= rem - 1;
                    acc[lvl] |= 1u64 << b;
                }
            }
            for (lvl, &word) in acc[..s].iter().enumerate() {
                planes.words_mut((r - r0) * s + lvl)[wi] = word;
            }
        }
    }
    planes
}

/// Bit-slices one row of `values.len() ≤ 16` quantized values into
/// `levels` patterns: bit `c` of `out[s]` is bit level `s` of
/// `values[c]` — the on-the-fly counterpart of [`slice_rows`] for
/// synthetic pattern sources. Cost is proportional to the popcount of
/// the values, not `values.len() × levels`.
///
/// # Panics
///
/// Panics if `values.len() > 16`, `levels` is outside `1..=16`, or
/// `out.len() != levels`.
pub fn slice_patterns(values: &[i32], levels: u32, out: &mut [u16]) {
    assert!(values.len() <= 16, "at most 16 values per pattern row");
    assert!((1..=16).contains(&levels), "levels must be in 1..=16");
    assert_eq!(out.len(), levels as usize, "out must hold one pattern per level");
    out.fill(0);
    let vmask = ((1u64 << levels) - 1) as u32;
    for (c, &v) in values.iter().enumerate() {
        let mut rem = v as u32 & vmask;
        while rem != 0 {
            let lvl = rem.trailing_zeros() as usize;
            rem &= rem - 1;
            out[lvl] |= 1 << c;
        }
    }
}

// ---------------------------------------------------------------------------
// i64 row kernels (result-slab accumulation)
// ---------------------------------------------------------------------------

/// `dst[i] += src[i]`, four elements per iteration.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn add_row(dst: &mut [i64], src: &[i64]) {
    assert_eq!(dst.len(), src.len(), "add_row: length mismatch");
    let mut d = dst.chunks_exact_mut(4);
    let mut s = src.chunks_exact(4);
    for (dc, sc) in (&mut d).zip(&mut s) {
        dc[0] += sc[0];
        dc[1] += sc[1];
        dc[2] += sc[2];
        dc[3] += sc[3];
    }
    for (a, &x) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *a += x;
    }
}

/// `dst[i] += a[i] + b[i]` in one fused pass — halves the slab traffic of
/// two separate [`add_row`] calls for multi-bit diff masks.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn add_two_rows(dst: &mut [i64], a: &[i64], b: &[i64]) {
    assert_eq!(dst.len(), a.len(), "add_two_rows: length mismatch");
    assert_eq!(dst.len(), b.len(), "add_two_rows: length mismatch");
    let mut d = dst.chunks_exact_mut(4);
    let mut ac = a.chunks_exact(4);
    let mut bc = b.chunks_exact(4);
    for ((dc, xc), yc) in (&mut d).zip(&mut ac).zip(&mut bc) {
        dc[0] += xc[0] + yc[0];
        dc[1] += xc[1] + yc[1];
        dc[2] += xc[2] + yc[2];
        dc[3] += xc[3] + yc[3];
    }
    for ((v, &x), &y) in d.into_remainder().iter_mut().zip(ac.remainder()).zip(bc.remainder()) {
        *v += x + y;
    }
}

/// Adds every input row selected by the set bits of `bits` onto `dst` —
/// the multi-word diff-bit row-add of the PPE slab model. Rows are
/// consumed two at a time through [`add_two_rows`]; exact integer
/// addition makes the pairing order-invariant.
///
/// # Panics
///
/// Panics if a selected row index is `>= inputs.rows()` or row lengths
/// disagree with `dst`.
pub fn add_selected_rows(dst: &mut [i64], inputs: TileView<'_>, mut bits: u16) {
    while bits != 0 {
        let j = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        if bits != 0 {
            let j2 = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            add_two_rows(dst, inputs.row(j), inputs.row(j2));
        } else {
            add_row(dst, inputs.row(j));
        }
    }
}

/// `dst[i] += w * src[i]`, four elements per iteration — the weighted
/// bit-plane accumulation of the output stage (`w = ±2^level`).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(dst: &mut [i64], w: i64, src: &[i64]) {
    assert_eq!(dst.len(), src.len(), "axpy: length mismatch");
    let mut d = dst.chunks_exact_mut(4);
    let mut s = src.chunks_exact(4);
    for (dc, sc) in (&mut d).zip(&mut s) {
        dc[0] += w * sc[0];
        dc[1] += w * sc[1];
        dc[2] += w * sc[2];
        dc[3] += w * sc[3];
    }
    for (a, &x) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *a += w * x;
    }
}

// ---------------------------------------------------------------------------
// im2col lowering
// ---------------------------------------------------------------------------

/// Lowers an input feature map to the im2col patch matrix at run
/// granularity: for each `(channel, ky, kx)` patch row, whole in-bounds
/// output runs are copied with `copy_from_slice` (stride 1) or a strided
/// gather, and out-of-bounds taps are skipped wholesale (the output is
/// pre-zeroed) — no per-element bounds checks. Semantics are identical
/// to the per-element `im2col` definition (see the oracle test).
///
/// # Panics
///
/// Panics if `input` has the wrong shape for `shape`.
pub fn im2col_lower(shape: &ConvShape, input: &MatI32) -> MatI32 {
    assert_eq!(input.rows(), shape.in_c, "input channel count mismatch");
    assert_eq!(input.cols(), shape.in_h * shape.in_w, "input spatial size mismatch");
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let mut out = MatI32::zeros(shape.in_c * shape.kh * shape.kw, oh * ow);
    for c in 0..shape.in_c {
        let src_row = input.row(c);
        for ky in 0..shape.kh {
            for kx in 0..shape.kw {
                let krow = (c * shape.kh + ky) * shape.kw + kx;
                // In-bounds output-column run for this kx:
                // 0 <= ox·stride + kx − pad < in_w.
                if shape.in_w + shape.pad <= kx {
                    continue;
                }
                let ox_lo =
                    if shape.pad > kx { (shape.pad - kx).div_ceil(shape.stride) } else { 0 };
                let ox_hi = ((shape.in_w + shape.pad - kx - 1) / shape.stride + 1).min(ow);
                if ox_lo >= ox_hi {
                    continue;
                }
                let dst_row = out.row_mut(krow);
                for oy in 0..oh {
                    let iy = (oy * shape.stride + ky) as isize - shape.pad as isize;
                    if iy < 0 || iy as usize >= shape.in_h {
                        continue;
                    }
                    let src_base = iy as usize * shape.in_w + ox_lo * shape.stride + kx - shape.pad;
                    let dst = &mut dst_row[oy * ow + ox_lo..oy * ow + ox_hi];
                    if shape.stride == 1 {
                        dst.copy_from_slice(&src_row[src_base..src_base + dst.len()]);
                    } else {
                        for (i, d) in dst.iter_mut().enumerate() {
                            *d = src_row[src_base + i * shape.stride];
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Deterministic pseudo-random bit predicate.
    fn bit_at(r: usize, c: usize, seed: u64) -> bool {
        (r as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((c as u64).wrapping_mul(0xBF58476D1CE4E5B9))
            .wrapping_add(seed)
            .count_ones()
            .is_multiple_of(2)
    }

    #[test]
    fn popcount_words_matches_scalar() {
        for len in [0usize, 1, 3, 4, 5, 8, 13] {
            let words: Vec<u64> =
                (0..len).map(|i| (i as u64).wrapping_mul(0x2545F4914F6CDD1D)).collect();
            let scalar: u64 = words.iter().map(|w| u64::from(w.count_ones())).sum();
            assert_eq!(popcount_words(&words), scalar, "len {len}");
        }
    }

    #[test]
    fn xor_popcount_words_matches_scalar() {
        for len in [0usize, 1, 4, 7, 9] {
            let a: Vec<u64> = (0..len).map(|i| (i as u64).wrapping_mul(40503)).collect();
            let b: Vec<u64> =
                (0..len).map(|i| (i as u64).wrapping_mul(2654435761).rotate_left(7)).collect();
            let scalar: u64 =
                a.iter().zip(&b).map(|(&x, &y)| u64::from((x ^ y).count_ones())).sum();
            assert_eq!(xor_popcount_words(&a, &b), scalar, "len {len}");
        }
    }

    proptest! {
        /// extract_bits over packed rows equals the per-bit get loop, for
        /// widths 1..=16 and non-word-multiple column tails.
        #[test]
        fn extract_bits_matches_scalar(
            cols in 1usize..200,
            c0 in 0usize..220,
            width in 1u32..=16,
            seed in 0u64..16,
        ) {
            let m = BinaryMatrix::from_fn(2, cols, |r, c| bit_at(r, c, seed));
            for r in 0..2 {
                let mut expect = 0u16;
                for j in 0..width as usize {
                    if c0 + j < cols && m.get(r, c0 + j) {
                        expect |= 1 << j;
                    }
                }
                prop_assert_eq!(extract_bits(m.words(r), c0, width), expect);
            }
        }

        /// insert_bits equals the per-bit set loop and preserves both the
        /// untouched columns and the tail-zero invariant.
        #[test]
        fn insert_bits_matches_scalar(
            cols in 1usize..200,
            c0 in 0usize..220,
            width in 1u32..=16,
            pattern in 0u16..=u16::MAX,
            seed in 0u64..16,
        ) {
            // Dirty starting contents: both copies start identical.
            let mut word = BinaryMatrix::from_fn(1, cols, |r, c| bit_at(r, c, seed));
            let mut scalar = word.clone();
            insert_bits(word.words_mut(0), cols, c0, width, pattern);
            for j in 0..width as usize {
                if c0 + j < cols {
                    scalar.set(0, c0 + j, pattern & (1 << j) != 0);
                }
            }
            prop_assert_eq!(&word, &scalar);
            // Tail invariant: bits past `cols` in the last word stay zero.
            let tail = cols % 64;
            if tail != 0 {
                let last = *word.words(0).last().unwrap();
                prop_assert_eq!(last >> tail, 0, "tail bits must stay zero");
            }
        }

        /// The facade sub-tile extraction equals the scalar oracle,
        /// including row/column padding, with a dirty reused buffer.
        #[test]
        fn extract_subtile_patterns_into_matches_scalar(
            rows in 1usize..12,
            cols in 1usize..80,
            row0 in 0usize..14,
            take in 1usize..10,
            k0 in 0usize..90,
            width in 1u32..=16,
            seed in 0u64..16,
        ) {
            let m = BinaryMatrix::from_fn(rows, cols, |r, c| bit_at(r, c, seed));
            let mut out = vec![0xFFFFu16; 3]; // dirty, wrong-sized buffer
            extract_subtile_patterns_into(&m, row0, take, k0, width, &mut out);
            prop_assert_eq!(out.len(), take);
            for (r, &got) in out.iter().enumerate() {
                let mut expect = 0u16;
                for j in 0..width as usize {
                    let (rr, cc) = (row0 + r, k0 + j);
                    if rr < rows && cc < cols && m.get(rr, cc) {
                        expect |= 1 << j;
                    }
                }
                prop_assert_eq!(got, expect, "row {}", r);
            }
        }

        /// slice_rows equals the per-bit scalar slicer for arbitrary bit
        /// widths, shard ranges, and non-word-multiple column counts.
        #[test]
        fn slice_rows_matches_scalar(
            bits in 2u32..=12,
            rows in 1usize..6,
            cols in 1usize..70,
            seed in 0u64..16,
        ) {
            let hi = (1i32 << (bits - 1)) - 1;
            let lo = -(1i32 << (bits - 1));
            let m = MatI32::from_fn(rows, cols, |r, c| {
                let span = (hi - lo + 1) as u64;
                let x = (r as u64)
                    .wrapping_mul(2654435761)
                    .wrapping_add((c as u64).wrapping_mul(40503))
                    .wrapping_add(seed) % span;
                x as i32 + lo
            });
            let r0 = 0;
            let r1 = rows;
            let got = slice_rows(&m, bits, r0, r1);
            let s = bits as usize;
            let want = BinaryMatrix::from_fn((r1 - r0) * s, cols, |br, c| {
                let (r, lvl) = (r0 + br / s, br % s);
                m.get(r, c) as u32 & (1 << lvl) != 0
            });
            prop_assert_eq!(got, want);
        }

        /// slice_patterns equals the per-bit loop, over a dirty output.
        #[test]
        fn slice_patterns_matches_scalar(
            t in 1usize..=16,
            levels in 1u32..=16,
            seed in 0u64..64,
        ) {
            let hi = 1i64 << (levels - 1);
            let values: Vec<i32> = (0..t)
                .map(|c| {
                    let x = (c as u64).wrapping_mul(0x9E3779B9).wrapping_add(seed * 7919);
                    ((x % (2 * hi) as u64) as i64 - hi) as i32
                })
                .collect();
            let mut out = vec![0xFFFFu16; levels as usize]; // dirty
            slice_patterns(&values, levels, &mut out);
            for (lvl, &got) in out.iter().enumerate() {
                let mut expect = 0u16;
                for (c, &v) in values.iter().enumerate() {
                    if v as u32 & (1 << lvl) != 0 {
                        expect |= 1 << c;
                    }
                }
                prop_assert_eq!(got, expect, "level {}", lvl);
            }
        }

        /// The i64 row kernels equal their scalar loops for lengths around
        /// the unroll factor, onto dirty destinations.
        #[test]
        fn row_adds_match_scalar(
            m in 0usize..20,
            w in -64i64..=64,
            seed in 0u64..32,
        ) {
            let gen = |salt: u64| -> Vec<i64> {
                (0..m)
                    .map(|i| {
                        ((i as u64).wrapping_mul(0x2545F4914F6CDD1D)
                            .wrapping_add(seed * 31 + salt) % 2001) as i64 - 1000
                    })
                    .collect()
            };
            let (dst0, a, b) = (gen(1), gen(2), gen(3));

            let mut got = dst0.clone();
            add_row(&mut got, &a);
            let want: Vec<i64> = dst0.iter().zip(&a).map(|(&d, &x)| d + x).collect();
            prop_assert_eq!(&got, &want);

            let mut got = dst0.clone();
            add_two_rows(&mut got, &a, &b);
            let want: Vec<i64> =
                dst0.iter().zip(&a).zip(&b).map(|((&d, &x), &y)| d + x + y).collect();
            prop_assert_eq!(&got, &want);

            let mut got = dst0.clone();
            axpy(&mut got, w, &a);
            let want: Vec<i64> = dst0.iter().zip(&a).map(|(&d, &x)| d + w * x).collect();
            prop_assert_eq!(&got, &want);
        }

        /// add_selected_rows equals the per-bit add loop for every mask,
        /// odd and even popcounts alike.
        #[test]
        fn add_selected_rows_matches_scalar(
            t in 1usize..=16,
            m in 1usize..10,
            mask in 0u32..=u32::MAX,
            seed in 0u64..16,
        ) {
            let bits = (mask & ((1u32 << t) - 1)) as u16;
            let staged: Vec<i64> = (0..t * m)
                .map(|i| {
                    ((i as u64).wrapping_mul(0x9E3779B97F4A7C15)
                        .wrapping_add(seed) % 401) as i64 - 200
                })
                .collect();
            let view = TileView::new(&staged, t, m, m);
            let dst0: Vec<i64> = (0..m).map(|i| i as i64 * 13 - 7).collect(); // dirty
            let mut got = dst0.clone();
            add_selected_rows(&mut got, view, bits);
            let mut want = dst0;
            for j in 0..t {
                if bits & (1 << j) != 0 {
                    for (a, &x) in want.iter_mut().zip(view.row(j)) {
                        *a += x;
                    }
                }
            }
            prop_assert_eq!(got, want);
        }

        /// im2col_lower equals the per-element scalar lowering on random
        /// shapes (padding, stride, kernel size).
        #[test]
        fn im2col_lower_matches_scalar(
            in_c in 1usize..3,
            kh in 1usize..4,
            kw in 1usize..4,
            stride in 1usize..3,
            pad in 0usize..3,
            extra_h in 0usize..4,
            extra_w in 0usize..4,
            seed in 0i32..100,
        ) {
            let in_h = kh + extra_h;
            let in_w = kw + extra_w;
            let shape = ConvShape { in_c, out_c: 1, kh, kw, stride, pad, in_h, in_w };
            let x = MatI32::from_fn(in_c, in_h * in_w, |r, c| {
                ((r as i32 * 5 + c as i32 * 13 + seed) % 11) - 5
            });
            let (oh, ow) = (shape.out_h(), shape.out_w());
            let mut want = MatI32::zeros(in_c * kh * kw, oh * ow);
            for c in 0..in_c {
                for ky in 0..kh {
                    for kx in 0..kw {
                        let krow = (c * kh + ky) * kw + kx;
                        for oy in 0..oh {
                            for ox in 0..ow {
                                let iy = (oy * stride + ky) as isize - pad as isize;
                                let ix = (ox * stride + kx) as isize - pad as isize;
                                if iy >= 0
                                    && ix >= 0
                                    && (iy as usize) < in_h
                                    && (ix as usize) < in_w
                                {
                                    let v = x.get(c, iy as usize * in_w + ix as usize);
                                    want.set(krow, oy * ow + ox, v);
                                }
                            }
                        }
                    }
                }
            }
            prop_assert_eq!(im2col_lower(&shape, &x), want);
        }
    }
}
