//! Bit-slicing of signed integer matrices (Fig. 2).
//!
//! An `S`-bit 2's-complement matrix of shape `(N × K)` is decomposed into
//! `S` binary planes and rearranged into a single `(S·N × K)` binary
//! matrix. Binary row `n·S + s` holds bit level `s` (0 = LSB) of weight
//! row `n`; the MSB plane (`s = S−1`) carries weight `−2^(S−1)`, all other
//! planes `+2^s` — so the reconstruction
//! `w = −b_{S−1}·2^(S−1) + Σ b_s·2^s` is exact for every representable
//! value, which is what makes the whole transitive pipeline lossless.

use crate::binmat::BinaryMatrix;
use ta_quant::MatI32;

/// A bit-sliced integer matrix: the packed `(S·N × K)` binary matrix plus
/// the metadata needed to reconstruct and to schedule (bit level ↔ shift
/// and sign).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSlicedMatrix {
    bits: u32,
    n: usize,
    k: usize,
    planes: BinaryMatrix,
}

impl BitSlicedMatrix {
    /// Slices a signed matrix into `bits` binary planes.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `2..=16` or any element does not fit in
    /// `bits` signed bits (callers quantize first; an out-of-range value is
    /// a logic error upstream).
    ///
    /// # Examples
    ///
    /// ```
    /// use ta_bitslice::BitSlicedMatrix;
    /// use ta_quant::MatI32;
    ///
    /// let w = MatI32::from_rows(&[&[6, -5, -2, 4]]);
    /// let sliced = BitSlicedMatrix::slice(&w, 4);
    /// assert_eq!(sliced.reconstruct(), w);
    /// ```
    pub fn slice(m: &MatI32, bits: u32) -> Self {
        assert!((2..=16).contains(&bits), "bits must be in 2..=16, got {bits}");
        assert!(
            m.fits_signed_bits(bits),
            "matrix does not fit in {bits} signed bits; quantize first"
        );
        let (n, k) = (m.rows(), m.cols());
        Self { bits, n, k, planes: slice_rows(m, bits, 0, n) }
    }

    /// [`Self::slice`] sharded across `threads` scoped worker threads:
    /// each worker slices a contiguous range of source rows, and the
    /// per-shard plane blocks are stitched back in row order, so the
    /// result is **identical** to the serial slice. `threads <= 1` (or a
    /// matrix too small to shard) runs serially.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Self::slice`].
    pub fn slice_parallel(m: &MatI32, bits: u32, threads: usize) -> Self {
        let (n, k) = (m.rows(), m.cols());
        if threads <= 1 || n < 2 * threads {
            return Self::slice(m, bits);
        }
        assert!((2..=16).contains(&bits), "bits must be in 2..=16, got {bits}");
        assert!(
            m.fits_signed_bits(bits),
            "matrix does not fit in {bits} signed bits; quantize first"
        );
        // Near-equal contiguous row shards, one per worker.
        let shards = threads.min(n);
        let base = n / shards;
        let extra = n % shards;
        let mut ranges = Vec::with_capacity(shards);
        let mut start = 0usize;
        for i in 0..shards {
            let len = base + usize::from(i < extra);
            ranges.push((start, start + len));
            start += len;
        }
        let blocks = std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|(r0, r1)| scope.spawn(move || slice_rows(m, bits, r0, r1)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("bit-slicing worker panicked"))
                .collect::<Vec<_>>()
        });
        Self { bits, n, k, planes: BinaryMatrix::vstack(&blocks) }
    }

    /// Bit width `S`.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Source matrix row count `N`.
    pub fn source_rows(&self) -> usize {
        self.n
    }

    /// Source matrix column count `K` (the reduction dimension).
    pub fn cols(&self) -> usize {
        self.k
    }

    /// Total binary rows, `S·N`.
    pub fn binary_rows(&self) -> usize {
        self.n * self.bits as usize
    }

    /// The packed `(S·N × K)` binary matrix.
    pub fn planes(&self) -> &BinaryMatrix {
        &self.planes
    }

    /// Decodes a binary row index into `(source_row, bit_level)`.
    #[inline]
    pub fn decode_row(&self, binary_row: usize) -> (usize, u32) {
        (binary_row / self.bits as usize, (binary_row % self.bits as usize) as u32)
    }

    /// Signed weight of bit level `s`: `−2^(S−1)` for the MSB plane,
    /// `+2^s` otherwise.
    #[inline]
    pub fn level_weight(&self, s: u32) -> i64 {
        debug_assert!(s < self.bits);
        if s == self.bits - 1 {
            -(1i64 << s)
        } else {
            1i64 << s
        }
    }

    /// Signed weight of a binary row (combines [`Self::decode_row`] and
    /// [`Self::level_weight`]).
    #[inline]
    pub fn row_weight(&self, binary_row: usize) -> i64 {
        self.level_weight(self.decode_row(binary_row).1)
    }

    /// Reconstructs the original signed matrix (exact inverse of
    /// [`Self::slice`]).
    pub fn reconstruct(&self) -> MatI32 {
        let mut out = MatI32::zeros(self.n, self.k);
        for br in 0..self.binary_rows() {
            let (r, s) = self.decode_row(br);
            let w = self.level_weight(s);
            for c in 0..self.k {
                if self.planes.get(br, c) {
                    let v = out.get(r, c) as i64 + w;
                    out.set(r, c, v as i32);
                }
            }
        }
        out
    }

    /// Bit density of the sliced matrix (fraction of 1-bits) — the paper's
    /// *bit sparsity* baseline metric.
    pub fn bit_density(&self) -> f64 {
        self.planes.bit_density()
    }
}

/// Slices source rows `[r0, r1)` of `m` into their `bits` binary planes
/// (the per-shard kernel shared by [`BitSlicedMatrix::slice`] and
/// [`BitSlicedMatrix::slice_parallel`]) — one word-parallel pass via
/// [`crate::kernels::slice_rows`] instead of one row sweep per bit level.
fn slice_rows(m: &MatI32, bits: u32, r0: usize, r1: usize) -> BinaryMatrix {
    crate::kernels::slice_rows(m, bits, r0, r1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::identity_op, clippy::erasing_op)] // spelled-out row formula
    fn paper_fig1_example() {
        // Fig. 1/3 use the 4-bit binary rows 1011, 1111, 0011, 0010 with
        // input [6, -5, -2, 4]. As *unsigned single-plane* rows those come
        // from slicing the 1-plane values directly; here we check the
        // 2's-complement slicing of real Int4 values instead.
        let w = MatI32::from_rows(&[&[1, 0, -3, 5], &[-5, 3, 7, 3]]);
        let s = BitSlicedMatrix::slice(&w, 4);
        assert_eq!(s.reconstruct(), w);
        // -3 = 1101₂ in 4-bit 2's complement: bits 0,2,3 set.
        let col = 2; // value -3 in row 0
        assert!(s.planes().get(0 * 4 + 0, col));
        assert!(!s.planes().get(0 * 4 + 1, col));
        assert!(s.planes().get(0 * 4 + 2, col));
        assert!(s.planes().get(0 * 4 + 3, col));
    }

    #[test]
    fn roundtrip_all_4bit_values() {
        let vals: Vec<i32> = (-8..=7).collect();
        let w = MatI32::from_vec(1, vals.len(), vals.clone());
        let s = BitSlicedMatrix::slice(&w, 4);
        assert_eq!(s.reconstruct().as_slice(), vals.as_slice());
    }

    #[test]
    fn roundtrip_8bit_extremes() {
        let w = MatI32::from_rows(&[&[-128, 127, 0, -1, 1, 64, -64, 100]]);
        let s = BitSlicedMatrix::slice(&w, 8);
        assert_eq!(s.reconstruct(), w);
        assert_eq!(s.binary_rows(), 8);
    }

    #[test]
    fn level_weights_twos_complement() {
        let w = MatI32::zeros(1, 1);
        let s = BitSlicedMatrix::slice(&w, 8);
        assert_eq!(s.level_weight(0), 1);
        assert_eq!(s.level_weight(6), 64);
        assert_eq!(s.level_weight(7), -128);
    }

    #[test]
    fn decode_row_layout() {
        let w = MatI32::zeros(3, 2);
        let s = BitSlicedMatrix::slice(&w, 4);
        assert_eq!(s.decode_row(0), (0, 0));
        assert_eq!(s.decode_row(3), (0, 3));
        assert_eq!(s.decode_row(4), (1, 0));
        assert_eq!(s.decode_row(11), (2, 3));
        assert_eq!(s.row_weight(3), -8);
        assert_eq!(s.row_weight(4), 1);
    }

    #[test]
    fn minus_one_is_all_ones() {
        let w = MatI32::from_rows(&[&[-1]]);
        let s = BitSlicedMatrix::slice(&w, 6);
        for lvl in 0..6 {
            assert!(s.planes().get(lvl, 0), "level {lvl}");
        }
        assert_eq!(s.reconstruct().get(0, 0), -1);
    }

    #[test]
    fn bit_density_of_known_matrix() {
        // Value 0b0101 = 5 has 2 of 4 bits set.
        let w = MatI32::from_rows(&[&[5, 5]]);
        let s = BitSlicedMatrix::slice(&w, 4);
        assert!((s.bit_density() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn out_of_range_rejected() {
        let w = MatI32::from_rows(&[&[8]]); // needs 5 bits
        let _ = BitSlicedMatrix::slice(&w, 4);
    }

    #[test]
    fn parallel_slice_identical_to_serial() {
        let w =
            MatI32::from_fn(37, 23, |r, c| (((r * 23 + c) as i64 * 2654435761 % 255) - 127) as i32);
        let serial = BitSlicedMatrix::slice(&w, 8);
        for threads in [0usize, 1, 2, 3, 8, 64] {
            let parallel = BitSlicedMatrix::slice_parallel(&w, 8, threads);
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_slice_tiny_matrix_falls_back() {
        let w = MatI32::from_rows(&[&[3, -1], &[0, 7]]);
        assert_eq!(BitSlicedMatrix::slice_parallel(&w, 4, 8), BitSlicedMatrix::slice(&w, 4));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn parallel_out_of_range_rejected() {
        let w = MatI32::from_fn(64, 4, |_, _| 8); // needs 5 bits
        let _ = BitSlicedMatrix::slice_parallel(&w, 4, 4);
    }
}
