//! PopCount / Hamming-order utilities shared by the sorter and the
//! Scoreboard.
//!
//! The Scoreboard traverses Hasse nodes level by level — i.e. in
//! *Hamming order*: all patterns with one set bit, then two, … (Alg. 1
//! line 3 hard-codes this order for `T = 4`: `0,1,2,4,8,3,5,6,9,…`).

/// All `2^width` patterns sorted by popcount (ascending), ties by numeric
/// value — the generalized traversal order of Alg. 1 / Alg. 2.
///
/// # Panics
///
/// Panics if `width` is outside `1..=16`.
///
/// # Examples
///
/// ```
/// use ta_bitslice::hamming_order;
///
/// assert_eq!(hamming_order(4)[..8], [0, 1, 2, 4, 8, 3, 5, 6]);
/// ```
pub fn hamming_order(width: u32) -> Vec<u16> {
    assert!((1..=16).contains(&width), "width must be in 1..=16");
    let mut v: Vec<u16> = (0..(1u32 << width)).map(|p| p as u16).collect();
    v.sort_by_key(|&p| (p.count_ones(), p));
    v
}

/// Immediate Hasse *suffixes* of `pattern`: every pattern reachable by a
/// single 0→1 flip within `width` bits (the Suffix Translator of Fig. 6).
///
/// # Panics
///
/// Panics if `width` is outside `1..=16`.
pub fn suffixes(pattern: u16, width: u32) -> Vec<u16> {
    assert!((1..=16).contains(&width), "width must be in 1..=16");
    // Iterate only the zero bits (cost ∝ their count), mirroring the
    // set-bit walk in `prefixes`, instead of scanning all `width` lanes.
    let mut zeros = !pattern & ((1u32 << width) - 1) as u16;
    let mut out = Vec::with_capacity(zeros.count_ones() as usize);
    while zeros != 0 {
        let bit = zeros & zeros.wrapping_neg();
        out.push(pattern | bit);
        zeros &= zeros - 1;
    }
    out
}

/// Immediate Hasse *prefixes* of `pattern`: every pattern reachable by a
/// single 1→0 flip (the Prefix Translator of Fig. 6).
pub fn prefixes(pattern: u16) -> Vec<u16> {
    let mut out = Vec::new();
    let mut bits = pattern;
    while bits != 0 {
        let bit = bits & bits.wrapping_neg();
        out.push(pattern & !bit);
        bits &= bits - 1;
    }
    out
}

/// The Hasse level of a pattern = its popcount.
#[inline]
pub fn level(pattern: u16) -> u32 {
    pattern.count_ones()
}

/// Binomial coefficient `C(n, k)` (u64, exact for the small arguments the
/// parallelism analysis of §2.4 needs).
///
/// # Panics
///
/// Panics on intermediate overflow (not reachable for `n ≤ 20`).
pub fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u64 = 1;
    for i in 0..k {
        acc = acc.checked_mul(n - i).expect("binomial overflow") / (i + 1);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamming_order_4bit_matches_alg1() {
        // The exact traversal order hard-coded in Alg. 1 (with node 15 at
        // the end, which the paper's forward list omits because level-4
        // nodes have no suffixes to propagate to).
        assert_eq!(hamming_order(4), vec![0, 1, 2, 4, 8, 3, 5, 6, 9, 10, 12, 7, 11, 13, 14, 15]);
    }

    #[test]
    fn hamming_order_is_level_monotone() {
        for width in [1u32, 5, 8] {
            let order = hamming_order(width);
            assert_eq!(order.len(), 1 << width);
            for w in order.windows(2) {
                assert!(level(w[0]) <= level(w[1]));
            }
        }
    }

    #[test]
    fn suffixes_of_node_3_width_4() {
        // Fig. 4(a): node 3 (0011) has suffixes 7 (0111) and 11 (1011).
        assert_eq!(suffixes(0b0011, 4), vec![0b0111, 0b1011]);
        // The top node has none.
        assert!(suffixes(0b1111, 4).is_empty());
        // Node 0 has all level-1 nodes.
        assert_eq!(suffixes(0, 4), vec![1, 2, 4, 8]);
    }

    #[test]
    fn prefixes_of_node_11() {
        // Fig. 4(a): node 11 (1011) has prefixes 3 (0011), 9 (1001), 10 (1010).
        let mut p = prefixes(0b1011);
        p.sort_unstable();
        assert_eq!(p, vec![0b0011, 0b1001, 0b1010]);
        assert!(prefixes(0).is_empty());
        assert_eq!(prefixes(0b1000), vec![0]);
    }

    #[test]
    fn prefix_suffix_duality() {
        let width = 6;
        for pattern in 0u16..(1 << width) {
            for s in suffixes(pattern, width) {
                assert!(prefixes(s).contains(&pattern), "{pattern:b} -> {s:b}");
            }
            for p in prefixes(pattern) {
                assert!(suffixes(p, width).contains(&pattern), "{p:b} -> {pattern:b}");
            }
        }
    }

    #[test]
    fn binomial_parallelism_examples() {
        // §2.4: Level 2 of a 4-bit graph has parallelism 6; Level 4 of an
        // 8-bit graph has 70.
        assert_eq!(binomial(4, 2), 6);
        assert_eq!(binomial(8, 4), 70);
        assert_eq!(binomial(8, 0), 1);
        assert_eq!(binomial(3, 5), 0);
    }
}
