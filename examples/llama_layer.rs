//! Simulate one LLaMA-1-7B FC layer (q_proj, 4096×4096×2048) on the
//! Transitive Array at both weight precisions and on every baseline,
//! printing the Fig. 10-style comparison for a single layer.
//!
//! The Transitive Array rows go through the request API: one [`Session`]
//! per design point, a simulate [`GemmRequest`] per precision.
//!
//! Run with: `cargo run --release --example llama_layer`

use transitive_array::baselines::Baseline;
use transitive_array::models::{LlamaConfig, PAPER_SEQ_LEN};
use transitive_array::prelude::*;
use transitive_array::sim::EnergyModel;
use transitive_array::workloads::sources::example_llama_source;

fn main() -> Result<(), TaError> {
    let layer = LlamaConfig::l1_7b().fc_layers(PAPER_SEQ_LEN)[0];
    let shape = layer.shape;
    println!(
        "LLaMA-1-7B {}: GEMM {}x{}x{} ({:.1} GMACs)\n",
        layer.name,
        shape.n,
        shape.k,
        shape.m,
        shape.macs() as f64 / 1e9
    );

    let em = EnergyModel::paper_28nm();
    println!("{:<16} {:>14} {:>12} {:>12}", "accelerator", "cycles", "ms@500MHz", "energy(uJ)");

    for (b, wbits) in [
        (Baseline::bitfusion(), 8u32),
        (Baseline::ant(), 8),
        (Baseline::olive(), 8),
        (Baseline::tender(), 4),
        (Baseline::bitvert(), 8),
    ] {
        let rep = b.simulate_gemm(shape, wbits, 8, &em);
        println!(
            "{:<16} {:>14} {:>12.2} {:>12.1}",
            format!("{}-{}b", b.name(), wbits),
            rep.cycles,
            rep.seconds * 1e3,
            rep.energy.total() / 1e6
        );
    }

    for (label, base, wbits) in [
        ("TA-8bit", TransArrayConfig::paper_w8(), 8u32),
        ("TA-4bit", TransArrayConfig::paper_w4(), 4),
    ] {
        let session = Session::new(base.to_builder().sample_limit(1024).build()?)?;
        let src = example_llama_source(wbits, session.config().n_tile());
        let rep = session.run(GemmRequest::simulate(shape, src))?.report;
        println!(
            "{:<16} {:>14} {:>12.2} {:>12.1}   (density {:.1}%, {} of {} sub-tiles simulated)",
            label,
            rep.cycles,
            rep.seconds * 1e3,
            rep.energy.total() / 1e6,
            100.0 * rep.density,
            rep.subtiles_simulated,
            rep.subtiles_total
        );
    }
    Ok(())
}
