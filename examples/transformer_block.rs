//! End-to-end latency budget of one full LLaMA-1-7B Transformer block on
//! the Transitive Array (W4A8 FC layers, W8A8 attention with the dynamic
//! Scoreboard, softmax on the VPU) — the workload Fig. 10 + Fig. 12
//! decompose.
//!
//! Run with: `cargo run --release --example transformer_block`

use transitive_array::core::{TransArrayConfig, TransitiveArray};
use transitive_array::models::{LlamaConfig, PAPER_SEQ_LEN};
use transitive_array::sim::VpuModel;
use transitive_array::workloads::sources::{block_attention_source, block_fc_source};

fn main() {
    let model = LlamaConfig::l1_7b();
    let seq = PAPER_SEQ_LEN;
    println!(
        "LLaMA-1-7B block @ seq {seq}: hidden {}, ffn {}, {} heads\n",
        model.hidden, model.intermediate, model.heads
    );

    let mut total_cycles = 0u64;
    let mut total_energy_uj = 0.0f64;
    println!("{:<12} {:>22} {:>12} {:>10} {:>12}", "stage", "GEMM", "cycles", "ms", "energy(uJ)");

    // FC layers at W4A8 (the iso-accuracy QServe configuration).
    let fc_ta = TransitiveArray::new(TransArrayConfig {
        sample_limit: 512,
        ..TransArrayConfig::paper_w4()
    });
    for (i, layer) in model.fc_layers(seq).iter().enumerate() {
        let mut src = block_fc_source(fc_ta.config().n_tile(), i);
        let rep = fc_ta.simulate_layer(layer.shape, &mut src);
        println!(
            "{:<12} {:>8}x{:>5}x{:>5} {:>12} {:>10.3} {:>12.1}",
            layer.name,
            layer.shape.n,
            layer.shape.k,
            layer.shape.m,
            rep.cycles,
            rep.seconds * 1e3,
            rep.energy.total() / 1e6
        );
        total_cycles += rep.cycles;
        total_energy_uj += rep.energy.total() / 1e6;
    }

    // Attention at W8A8 (K/V caches quantized on the fly).
    let att_ta = TransitiveArray::new(TransArrayConfig {
        sample_limit: 512,
        ..TransArrayConfig::paper_w8()
    });
    let vpu = VpuModel::paper_default();
    for (i, (gemm, count)) in model.attention_gemms(seq).iter().enumerate() {
        let mut src = block_attention_source(att_ta.config().n_tile(), i);
        let rep = att_ta.simulate_layer(gemm.shape, &mut src);
        let cycles = rep.cycles * *count as u64;
        let energy = rep.energy.total() * *count as f64 / 1e6;
        println!(
            "{:<12} {:>5}x({:>4}x{:>4}x{:>4}) {:>11} {:>10.3} {:>12.1}",
            gemm.name,
            count,
            gemm.shape.n,
            gemm.shape.k,
            gemm.shape.m,
            cycles,
            (cycles as f64 / 500.0e6) * 1e3,
            energy
        );
        total_cycles += cycles;
        total_energy_uj += energy;
    }
    let softmax = vpu.softmax_cycles(seq, seq, 8) * model.heads as u64;
    println!(
        "{:<12} {:>22} {:>12} {:>10.3} {:>12}",
        "softmax",
        format!("{}x({}x{})", model.heads, seq, seq),
        softmax,
        (softmax as f64 / 500.0e6) * 1e3,
        "-"
    );
    total_cycles += softmax;

    println!(
        "\nblock total: {} cycles = {:.2} ms @500MHz, {:.1} uJ GEMM energy",
        total_cycles,
        total_cycles as f64 / 500.0e6 * 1e3,
        total_energy_uj
    );
    println!(
        "model total ({} blocks): {:.1} ms prefill",
        model.layers,
        model.layers as f64 * total_cycles as f64 / 500.0e6 * 1e3
    );
}
