//! Quickstart: the 60-second tour of the Transitive Array pipeline.
//!
//! Quantize an FP32 weight matrix, open a [`Session`] on the paper's
//! accelerator, run the transitive GEMM through the request API, verify
//! bit-exactness against the dense integer reference, and print the
//! sparsity/cycle report.
//!
//! Run with: `cargo run --release --example quickstart`

use transitive_array::prelude::*;
use transitive_array::quant::{quantize_absmax, Granularity, MatF32, QuantScheme};

fn main() -> Result<(), TaError> {
    // 1. A toy FP32 weight matrix and an 8-bit activation matrix.
    let w_f32 = MatF32::from_fn(16, 32, |r, c| ((r * 31 + c * 7) as f32 * 0.13).sin() * 2.5);
    let x = MatI32::from_fn(32, 8, |r, c| ((r as i32 * 17 + c as i32 * 5) % 255) - 127);

    // 2. Quantize the weights to int8 (per-channel absmax).
    let scheme = QuantScheme::new(8, Granularity::PerChannel);
    let (w_q, _params) = quantize_absmax(&w_f32, scheme);
    println!("quantized weights: {}x{} int8", w_q.rows(), w_q.cols());

    // 3. Build the paper's accelerator (Table 1 design point, with the
    //    sub-tile knobs scaled down a little for a toy matrix) and open
    //    a session on it. The builder validates every knob interaction.
    let cfg = TransArrayConfig::builder().units(2).m_tile(8).sample_limit(0).build()?;
    let session = Session::new(cfg)?;

    // 4. Execute the GEMM through the request API (functionally exact).
    let response = session.run(GemmRequest::execute(w_q.clone(), x.clone()))?;
    let (out, report) = (response.output.expect("execute requests carry output"), response.report);

    // 5. Verify losslessness against the dense integer reference.
    let reference = gemm_i32(&w_q, &x);
    assert_eq!(out, reference, "transitive GEMM must be bit-exact");
    println!("bit-exact against dense GEMM ✓");

    // 6. The numbers the paper is about.
    println!("\n--- Transitive Array report ---");
    println!("ops (adds):        {}", report.total_ops);
    println!("dense bit-ops:     {}", report.dense_bit_ops);
    println!("density:           {:.2}% (lower bound 1/T = 12.5%)", 100.0 * report.density);
    println!("cycles:            {}", report.cycles);
    println!("  compute:         {}", report.compute_cycles);
    println!("  DRAM:            {}", report.dram_cycles);
    println!("energy:            {:.1} nJ", report.energy_nj());
    println!("  buffers:         {:.1} nJ", report.energy.buffer_total() / 1000.0);
    println!("sub-tiles:         {}", report.subtiles_total);
    Ok(())
}
