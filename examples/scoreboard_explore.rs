//! Explore the Scoreboard on the paper's own worked example (Fig. 5):
//! TransRows 14, 2, 5, 1, 15, 7, 2 at T=4 — printing the Hasse forest,
//! lane assignment, and op classification the figure walks through.
//!
//! Run with: `cargo run --release --example scoreboard_explore`

use transitive_array::hasse::{ExecutionPlan, OpKind, Scoreboard, ScoreboardConfig, TileStats};

fn main() {
    let transrows: Vec<u16> = vec![14, 2, 5, 1, 15, 7, 2];
    println!("TransRows (Fig. 5 input): {transrows:?}\n");

    let sb = Scoreboard::build(ScoreboardConfig::with_width(4), transrows.iter().copied());

    println!("node  pattern  count  dist  parent  lane  kind");
    println!("-----------------------------------------------");
    for p in sb.active_nodes() {
        let e = sb.node(p);
        let kind = if e.transit {
            "TR (transit)"
        } else if sb.is_outlier(p) {
            "outlier"
        } else {
            "present"
        };
        println!(
            "{:>4}  {:04b}    {:>5}  {:>4}  {:>6}  {:>4}  {kind}",
            p,
            p,
            e.count,
            e.distance,
            if e.chosen_parent == u16::MAX { "-".to_string() } else { e.chosen_parent.to_string() },
            e.lane,
        );
    }

    let stats = TileStats::from_scoreboard(&sb);
    println!(
        "\nclassification: ZR={} FR={} PR={} TR={} (total ops {})",
        stats.zero_rows, stats.fr_rows, stats.pr_rows, stats.transit_ops, stats.total_ops
    );
    println!("density {:.1}% vs dense {} bit-ops", 100.0 * stats.density(), stats.dense_bit_ops);
    println!("lane PPE loads: {:?} (the figure's 4 + 4 OPs)", stats.lane_ppe);

    let plan = ExecutionPlan::from_scoreboard(&sb);
    println!("\nexecution plan (per lane, TranSparsity = node XOR prefix):");
    for (l, lane) in plan.lanes().iter().enumerate() {
        if lane.is_empty() {
            continue;
        }
        print!("  lane {l}: ");
        for op in lane {
            let tag = match op.kind {
                OpKind::Present => "",
                OpKind::Transit => "*",
            };
            print!("{:04b}{}<-{:04b}(^{:04b})  ", op.node, tag, op.prefix, op.diff);
        }
        println!();
    }
    println!("  (* = transit stop materialized by the backward pass)");

    // Evaluate with the paper's Fig. 1 input column [6, -2, -5, 4].
    let inputs: Vec<Vec<i64>> = vec![vec![6], vec![-2], vec![-5], vec![4]];
    println!("\nresults with input (bit0..bit3) = [6, -2, -5, 4]:");
    for (pattern, v) in plan.evaluate(&inputs) {
        println!("  result[{pattern:04b}] = {}", v[0]);
    }
}
