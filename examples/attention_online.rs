//! Online attention decode served by `ta-serve` — the dynamic-Scoreboard
//! capability (§3.4, §5.7) behind the serving frontend.
//!
//! The Key cache is generated at runtime (no offline pass possible), so
//! the Scoreboard builds each sub-tile's SI in hardware; that is what
//! makes QKᵀ servable at all. This example decodes two tenants'
//! attention streams concurrently: each step submits a QKᵀ GEMM whose
//! Key cache has grown by one row (the KV cache), the server buckets
//! and batches them continuously, and every served score vector is
//! checked bit-for-bit against the dense reference.
//!
//! Run with: `cargo run --release --example attention_online`

use transitive_array::prelude::*;
use transitive_array::workloads::{zoo, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The zoo's decode entry at full scale: the dynamic-Scoreboard design
    // point, sub-tile knobs scaled for a single head.
    let decode_steps = zoo::decode_steps(Scale::full());
    let session = Session::new(zoo::decode_config())?;

    // Two tenants decode concurrently behind one server. Every shape in
    // a decode trace is unique (the KV cache grows each step), so this
    // exercises the batcher's bucket churn; fairness interleaves the
    // tenants even though tenant 0 submits its whole trace first.
    let server = Server::start(
        session.clone(),
        ServerConfig {
            workers: 2,
            policy: BatchPolicy { max_batch: 4, max_delay_ns: 200_000, quantum_m: 1 },
            ..ServerConfig::default()
        },
    );
    let streams = [
        zoo::DecodeStream::new(0xA77E, decode_steps),
        zoo::DecodeStream::new(0xBEEF, decode_steps),
    ];

    let mut tickets = Vec::new();
    for (tenant, stream) in streams.iter().enumerate() {
        for t in 0..decode_steps {
            let ticket = server.submit(tenant as u32, stream.step_request(t))?;
            tickets.push((tenant, t, ticket));
        }
    }

    let mut latencies = Vec::new();
    let mut served_cycles = 0u64;
    for (tenant, t, ticket) in tickets {
        let resp = ticket.wait().expect("server answers every admitted request");
        let stream = &streams[tenant];
        let request = stream.step_request(t);
        let shape = request.shape();
        // Bit-exactness through the whole serving stack, per step.
        let direct = session.run_serial(request)?;
        assert_eq!(resp.response, direct, "tenant {tenant} step {t} diverged");
        assert_eq!(resp.response.output.as_ref().unwrap().rows(), shape.n);
        latencies.push(resp.latency_ns());
        served_cycles += resp.response.report.cycles;
    }
    latencies.sort_unstable();
    let stats = server.shutdown();

    println!("served 2 tenants x {decode_steps} decode steps — all bit-exact ✓");
    println!(
        "KV cache grew {}→{} rows; every step its own shape bucket",
        zoo::PREFILL_KV + 1,
        zoo::PREFILL_KV + decode_steps
    );
    println!("\n--- serving stats ---");
    println!("requests:          {}", stats.completed);
    println!("batches:           {}", stats.batches);
    println!("padded requests:   {}", stats.padded);
    println!("modelled cycles:   {served_cycles}");
    println!(
        "host latency:      p50 {:.1} us, p99 {:.1} us",
        latencies[latencies.len() / 2] as f64 / 1e3,
        latencies[latencies.len() * 99 / 100] as f64 / 1e3
    );
    Ok(())
}
