//! Online attention decode served by `ta-serve` — the dynamic-Scoreboard
//! capability (§3.4, §5.7) behind the serving frontend.
//!
//! The Key cache is generated at runtime (no offline pass possible), so
//! the Scoreboard builds each sub-tile's SI in hardware; that is what
//! makes QKᵀ servable at all. This example decodes two tenants'
//! attention streams concurrently: each step submits a QKᵀ GEMM whose
//! Key cache has grown by one row (the KV cache), the server buckets
//! and batches them continuously, and every served score vector is
//! checked bit-for-bit against the dense reference.
//!
//! Run with: `cargo run --release --example attention_online`

use transitive_array::models::StreamRng;
use transitive_array::prelude::*;

const HEAD_DIM: usize = 32;
const PREFILL: usize = 16;
const DECODE_STEPS: usize = 24;

/// One tenant's runtime-generated attention stream: the full Key cache
/// (prefill + every decoded token) and one query vector per step.
struct DecodeStream {
    k_cache: MatI32,
    queries: Vec<MatI32>,
}

impl DecodeStream {
    fn new(seed: u64) -> Self {
        let mut rng = StreamRng::new(seed);
        let mut int8 =
            move || -> i32 { ((rng.next_gaussian() * 39.0).round() as i32).clamp(-127, 127) };
        let k_cache = MatI32::from_fn(PREFILL + DECODE_STEPS, HEAD_DIM, |_, _| int8());
        let queries =
            (0..DECODE_STEPS).map(|_| MatI32::from_fn(HEAD_DIM, 1, |_, _| int8())).collect();
        Self { k_cache, queries }
    }

    /// The QKᵀ request for decode step `t`: the Key rows seen so far
    /// (`PREFILL + t + 1` of them) against this step's query.
    fn step_request(&self, t: usize) -> GemmRequest {
        let rows = PREFILL + t + 1;
        let k = MatI32::from_fn(rows, HEAD_DIM, |r, c| self.k_cache.get(r, c));
        GemmRequest::execute(k, self.queries[t].clone())
    }
}

fn main() -> Result<(), TaError> {
    // The dynamic-Scoreboard design point, sub-tile knobs scaled for a
    // single head.
    let cfg = TransArrayConfig::builder().units(2).m_tile(16).sample_limit(0).build()?;
    let session = Session::new(cfg)?;

    // Two tenants decode concurrently behind one server. Every shape in
    // a decode trace is unique (the KV cache grows each step), so this
    // exercises the batcher's bucket churn; fairness interleaves the
    // tenants even though tenant 0 submits its whole trace first.
    let server = Server::start(
        session.clone(),
        ServerConfig {
            workers: 2,
            policy: BatchPolicy { max_batch: 4, max_delay_ns: 200_000, quantum_m: 1 },
        },
    );
    let streams = [DecodeStream::new(0xA77E), DecodeStream::new(0xBEEF)];

    let mut tickets = Vec::new();
    for (tenant, stream) in streams.iter().enumerate() {
        for t in 0..DECODE_STEPS {
            let ticket = server.submit(tenant as u32, stream.step_request(t))?;
            tickets.push((tenant, t, ticket));
        }
    }

    let mut latencies = Vec::new();
    let mut served_cycles = 0u64;
    for (tenant, t, ticket) in tickets {
        let resp = ticket.wait().expect("server answers every admitted request");
        let stream = &streams[tenant];
        let request = stream.step_request(t);
        let shape = request.shape();
        // Bit-exactness through the whole serving stack, per step.
        let direct = session.run_serial(request)?;
        assert_eq!(resp.response, direct, "tenant {tenant} step {t} diverged");
        assert_eq!(resp.response.output.as_ref().unwrap().rows(), shape.n);
        latencies.push(resp.latency_ns());
        served_cycles += resp.response.report.cycles;
    }
    latencies.sort_unstable();
    let stats = server.shutdown();

    println!("served 2 tenants x {DECODE_STEPS} decode steps — all bit-exact ✓");
    println!(
        "KV cache grew {}→{} rows; every step its own shape bucket",
        PREFILL + 1,
        PREFILL + DECODE_STEPS
    );
    println!("\n--- serving stats ---");
    println!("requests:          {}", stats.completed);
    println!("batches:           {}", stats.batches);
    println!("padded requests:   {}", stats.padded);
    println!("modelled cycles:   {served_cycles}");
    println!(
        "host latency:      p50 {:.1} us, p99 {:.1} us",
        latencies[latencies.len() / 2] as f64 / 1e3,
        latencies[latencies.len() * 99 / 100] as f64 / 1e3
    );
    Ok(())
}
