//! On-the-fly attention quantization with the **dynamic Scoreboard** —
//! the capability that sets the Transitive Array apart from the offline
//! baselines (§3.4, §5.7).
//!
//! The Key cache is generated at runtime (no offline pass possible), so
//! the Scoreboard builds each sub-tile's SI in hardware. This example
//! runs a scaled-down single-head QKᵀ exactly, proves it lossless, and
//! contrasts dynamic-SI density with what a *stale* static SI (calibrated
//! on a previous sequence) achieves — the SI-miss effect of §3.3.
//!
//! Run with: `cargo run --release --example attention_online`

use transitive_array::core::{GemmShape, ScoreboardMode, TransArrayConfig, TransitiveArray};
use transitive_array::models::{QuantGaussianSource, StreamRng};
use transitive_array::quant::{gemm_i32, MatI32};

fn main() {
    let (seq, head_dim) = (64usize, 32usize);

    // Runtime-generated K cache and Q activations (int8).
    let mut rng = StreamRng::new(0xA77E);
    let k_cache = MatI32::from_fn(seq, head_dim, |_, _| {
        ((rng.next_gaussian() * 39.0).round() as i32).clamp(-127, 127)
    });
    let q = MatI32::from_fn(head_dim, seq, |_, _| {
        ((rng.next_gaussian() * 39.0).round() as i32).clamp(-127, 127)
    });

    // QKᵀ with the K cache as the "weight" tensor (§5.7).
    let cfg =
        TransArrayConfig { units: 2, m_tile: 16, sample_limit: 0, ..TransArrayConfig::paper_w8() };
    let ta = TransitiveArray::new(cfg.clone());
    let (scores, report) = ta.execute_gemm(&k_cache, &q);
    assert_eq!(scores, gemm_i32(&k_cache, &q), "attention scores must be exact");
    println!("single-head QK^T ({seq}x{head_dim}x{seq}) — lossless ✓");
    println!(
        "dynamic Scoreboard: density {:.2}%, {} cycles, {} sub-tiles",
        100.0 * report.density,
        report.cycles,
        report.subtiles_total
    );

    // Contrast: a static SI calibrated on a *different* sequence's K
    // cache misses constantly on this one.
    let stale =
        TransitiveArray::new(TransArrayConfig { scoreboard_mode: ScoreboardMode::Static, ..cfg });
    let (scores2, static_report) = stale.execute_gemm(&k_cache, &q);
    assert_eq!(scores2, gemm_i32(&k_cache, &q), "static mode stays exact");
    println!(
        "static Scoreboard (same-tensor calibration): density {:.2}%, SI misses {}",
        100.0 * static_report.density,
        static_report.si_misses
    );

    // At-scale dynamic run on the paper's full attention shape.
    let full = TransitiveArray::new(TransArrayConfig {
        sample_limit: 512,
        ..TransArrayConfig::paper_w8()
    });
    let mut src = QuantGaussianSource::new(8, 8, full.config().n_tile(), 99);
    let rep = full.simulate_layer(GemmShape::new(2048, 128, 2048), &mut src);
    println!(
        "\nfull-scale QK^T (2048x128x2048): density {:.2}%, {} cycles ({:.3} ms @500MHz)",
        100.0 * rep.density,
        rep.cycles,
        rep.seconds * 1e3
    );
}
