//! Convolution on the Transitive Array via im2col (§5.10): lower a
//! ResNet-18-style conv layer to GEMM, execute it exactly, and compare
//! against the direct convolution.
//!
//! Run with: `cargo run --release --example resnet_conv`

use transitive_array::bitslice::{conv_direct, flatten_weights, im2col};
use transitive_array::core::TransitiveArray;
use transitive_array::models::resnet18_layers;
use transitive_array::workloads::{zoo, Scale};

fn main() {
    // The zoo's conv entry at quick scale: a small conv in the spirit of
    // layer1 (3x3) so the exact functional path runs instantly.
    let shape = zoo::resnet_conv_shape(Scale::quick());
    let (n, k, m) = shape.gemm_dims();
    println!(
        "conv {}x{}x{}x{} -> GEMM {}x{}x{}",
        shape.out_c, shape.in_c, shape.kh, shape.kw, n, k, m
    );

    let (weights, input) = zoo::resnet_operands(&shape, zoo::RESNET_SEED);

    // Lower with im2col and run on the accelerator (4-bit weights, as the
    // paper quantizes ResNet's interior layers).
    let patches = im2col(&shape, &input);
    let wmat = flatten_weights(&shape, &weights);
    let ta = TransitiveArray::new(zoo::resnet_config());
    let (out, report) = ta.execute_gemm(&wmat, &patches);

    // The direct loop-nest convolution is the golden model.
    let reference = conv_direct(&shape, &weights, &input);
    assert_eq!(out, reference, "im2col conv on TransArray must be exact");
    println!("im2col conv on TransArray — lossless ✓");
    println!(
        "density {:.2}%, {} ops vs {} dense bit-ops, {} cycles",
        100.0 * report.density,
        report.total_ops,
        report.dense_bit_ops,
        report.cycles
    );

    // The real network's 21 layers, for scale.
    println!("\nResNet-18 layer zoo (Fig. 14's x-axis):");
    for l in resnet18_layers().iter().take(6) {
        println!(
            "  {:>2}  {:<22} GEMM {:>4}x{:>4}x{:>5}  ({} MMACs, {}-bit wgt)",
            l.index,
            l.name,
            l.gemm.n,
            l.gemm.k,
            l.gemm.m,
            l.gemm.macs() / 1_000_000,
            l.weight_bits
        );
    }
    println!("  …and 15 more (see `cargo run -p ta-bench --bin fig14`)");
}
