#!/usr/bin/env bash
# Hot-path bit-loop lint.
#
# The word-parallel kernel layer (`ta_bitslice::kernels`) exists so that
# no execution hot path iterates weight bits one at a time. This lint
# keeps it that way: it scans the audited hot-path files below for
# `for <var> in ..<width-like bound>` loops — the shape every per-bit
# scalar loop in this codebase ever had — and fails if one reappears
# outside a test module.
#
# Scoping rules:
#   * The file-final `#[cfg(test)]` module of each file is skipped:
#     scalar oracles and equivalence loops live there by design.
#   * `while bits != 0 { ... trailing_zeros ... }` set-bit walks do NOT
#     match — cost proportional to popcount is the word-level idiom the
#     kernels are built on, not a regression.
#   * Legitimate exceptions elsewhere go in ci/bitloop_allowlist.txt as
#     `<path>:<substring-of-the-line>`, one per line.
set -euo pipefail
cd "$(dirname "$0")/.."

ALLOWLIST=ci/bitloop_allowlist.txt

# Execution hot-path files: every file a GEMM/layer simulation touches
# between bit-slicing and the accumulated output, plus the consumers the
# kernels facade migrated.
AUDITED=(
  crates/bitslice/src/kernels.rs
  crates/bitslice/src/binmat.rs
  crates/bitslice/src/transrow.rs
  crates/bitslice/src/slicer.rs
  crates/bitslice/src/im2col.rs
  crates/bitslice/src/popcount.rs
  crates/hasse/src/exec.rs
  crates/hasse/src/si.rs
  crates/core/src/unit.rs
  crates/core/src/source.rs
  crates/core/src/accelerator.rs
  crates/models/src/synth.rs
  crates/baselines/src/bit_sparsity.rs
)

# A `for` loop whose bound mentions a bit-width quantity. `s`/`t` alone
# are too generic to match on; the named width knobs cover every per-bit
# loop this repo has ever carried on a hot path.
PATTERN='for [A-Za-z_][A-Za-z0-9_]* in [^{]*(width|bits|levels|weight_bits)'

fail=0
for f in "${AUDITED[@]}"; do
  if [[ ! -f "$f" ]]; then
    echo "check_bitloops: audited file missing: $f (update ci/check_bitloops.sh)" >&2
    fail=1
    continue
  fi
  # Strip everything from the file-final test module on.
  matches=$(awk -v f="$f" '/^#\[cfg\(test\)\]/{exit} {print f ":" FNR ":" $0}' "$f" \
    | grep -E "$PATTERN" || true)
  [[ -z "$matches" ]] && continue
  while IFS= read -r line; do
    allowed=0
    if [[ -f "$ALLOWLIST" ]]; then
      while IFS= read -r rule; do
        case "$rule" in ''|'#'*) continue ;; esac
        rpath=${rule%%:*}
        rsub=${rule#*:}
        if [[ "$line" == "$rpath":* && "$line" == *"$rsub"* ]]; then
          allowed=1
          break
        fi
      done < "$ALLOWLIST"
    fi
    if [[ $allowed -eq 0 ]]; then
      echo "per-bit loop on a hot path: $line" >&2
      echo "  (route it through ta_bitslice::kernels, or add an allowlist entry with a justification)" >&2
      fail=1
    fi
  done <<< "$matches"
done

if [[ $fail -ne 0 ]]; then
  exit 1
fi
echo "check_bitloops: no per-bit loops on audited hot paths (${#AUDITED[@]} files)"
