#!/usr/bin/env bash
# Size lint: crates/bench/src/perf.rs is the slim module root (record
# types + re-exports); measurement lives in perf/suite.rs, gating in
# perf/gate.rs, the codec in perf/json.rs. If the root creeps back
# toward the former 1000+-line monolith, workload definitions are
# probably leaking out of ta-workloads — move them back instead of
# raising the limit.
set -euo pipefail

LIMIT=800
FILE="crates/bench/src/perf.rs"

cd "$(dirname "$0")/.."

if [[ ! -f "$FILE" ]]; then
  echo "error: $FILE not found (did the perf module move? update ci/check_perf_lines.sh)" >&2
  exit 1
fi

lines=$(wc -l <"$FILE")
if ((lines >= LIMIT)); then
  echo "error: $FILE has $lines lines (limit $LIMIT)." >&2
  echo "Keep the root slim: workload definitions belong in crates/workloads," >&2
  echo "measurement in perf/suite.rs, gating in perf/gate.rs, JSON in perf/json.rs." >&2
  exit 1
fi
echo "ok: $FILE is $lines lines (< $LIMIT)"
